#include "api/http_server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"

namespace preempt::api {

HttpServer::~HttpServer() { stop(); }

void HttpServer::start(HttpHandler handler, Options options) {
  PREEMPT_REQUIRE(handler != nullptr, "http server needs a handler");
  PREEMPT_REQUIRE(!running_.load(), "http server already running");
  PREEMPT_REQUIRE(options.worker_threads >= 1, "http server needs at least one worker");
  PREEMPT_REQUIRE(options.max_pending_connections >= 1, "pending-connection cap must be >= 1");
  handler_ = std::move(handler);
  options_ = options;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("socket() failed: " + std::string(std::strerror(errno)));

  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never exposed beyond the host
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("bind() failed: " + why);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("listen() failed: " + why);
  }

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  connections_served_.store(0);
  draining_ = false;  // no threads yet, safe to write unlocked
  running_.store(true);
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    // Not running: still join finished threads if present.
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    return;
  }
  // shutdown() unblocks accept() so the loop observes running_ == false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Workers exit on draining_, not running_: the accept thread can push one
  // last fd after the running_ flip, so a worker keying off running_ could
  // exit with that fd stranded in pending_. draining_ is set only after the
  // accept join (nothing can enqueue anymore) and written under the queue
  // mutex, so no worker can miss it between its predicate check and wait()
  // — after these joins every accepted connection has been served.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;  // stop() closed the listener
      continue;                     // transient accept error
    }
    const timeval tv{options_.recv_timeout_seconds, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    bool shed = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() >= options_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      // Overload: refuse outright rather than queue without bound. Same
      // shutdown+drain close sequence as handle_connection — closing with
      // unread request bytes pending would RST and eat the 503 — but with a
      // much shorter recv bound: this runs on the (only) accept thread, so a
      // client that connected without sending anything must not stall new
      // accepts for the full recv_timeout_seconds.
      const timeval shed_tv{0, 100 * 1000};  // 100ms
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &shed_tv, sizeof(shed_tv));
      static const std::string kBusy =
          error_envelope(503, "overloaded", "server busy").serialize();
      (void)::send(fd, kBusy.data(), kBusy.size(), MSG_NOSIGNAL);
      ::shutdown(fd, SHUT_WR);
      char drain[1024];
      (void)::recv(fd, drain, sizeof(drain), 0);
      ::close(fd);
      PREEMPT_LOG_WARN << "http server shed a connection (pending queue full)";
      continue;
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return draining_ || !pending_.empty(); });
      if (pending_.empty()) return;  // draining and fully drained
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  HttpRequestParser parser;
  char buf[4096];
  HttpResponse response;
  bool have_response = false;

  while (!parser.complete()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed, timeout or error
    if (!parser.feed(buf, static_cast<std::size_t>(n))) {
      response = HttpResponse::bad_request(parser.error());
      have_response = true;
      break;
    }
  }

  if (!have_response) {
    if (!parser.complete()) {
      ::close(fd);
      return;  // truncated request; nothing sensible to answer
    }
    try {
      response = handler_(parser.request());
    } catch (const std::exception& e) {
      response = error_envelope(500, "internal", e.what());
    }
  }

  // Count before the response hits the wire so a client that has read its
  // reply always observes the connection as served.
  connections_served_.fetch_add(1);
  const std::string wire = response.serialize();
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  // Drain briefly so the peer sees a clean close, then release the socket.
  (void)::recv(fd, buf, sizeof(buf), 0);
  ::close(fd);
}

}  // namespace preempt::api
