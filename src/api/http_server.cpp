#include "api/http_server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"

namespace preempt::api {

HttpServer::~HttpServer() { stop(); }

void HttpServer::start(HttpHandler handler, Options options) {
  PREEMPT_REQUIRE(handler != nullptr, "http server needs a handler");
  PREEMPT_REQUIRE(!running_.load(), "http server already running");
  handler_ = std::move(handler);
  options_ = options;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("socket() failed: " + std::string(std::strerror(errno)));

  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never exposed beyond the host
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("bind() failed: " + why);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("listen() failed: " + why);
  }

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    // Not running: still join a finished accept thread if present.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown() unblocks accept() so the loop observes running_ == false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;  // stop() closed the listener
      continue;                     // transient accept error
    }
    const timeval tv{options_.recv_timeout_seconds, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void HttpServer::handle_connection(int fd) {
  HttpRequestParser parser;
  char buf[4096];
  HttpResponse response;
  bool have_response = false;

  while (!parser.complete()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed, timeout or error
    if (!parser.feed(buf, static_cast<std::size_t>(n))) {
      response = HttpResponse::bad_request(parser.error());
      have_response = true;
      break;
    }
  }

  if (!have_response) {
    if (!parser.complete()) {
      ::close(fd);
      return;  // truncated request; nothing sensible to answer
    }
    try {
      response = handler_(parser.request());
    } catch (const Error& e) {
      response = HttpResponse::json(500, std::string("{\"error\":\"") + e.what() + "\"}");
    } catch (const std::exception& e) {
      response = HttpResponse::json(500, std::string("{\"error\":\"") + e.what() + "\"}");
    }
  }

  const std::string wire = response.serialize();
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  // Drain briefly so the peer sees a clean close, then release the socket.
  (void)::recv(fd, buf, sizeof(buf), 0);
  ::close(fd);
}

}  // namespace preempt::api
