#include "api/router.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <memory>
#include <set>

#include "common/error.hpp"
#include "common/log.hpp"

namespace preempt::api {

const std::string& RouteContext::param(const std::string& name) const {
  const auto it = params.find(name);
  PREEMPT_REQUIRE(it != params.end(), "route " + route + " captures no parameter '" + name + "'");
  return it->second;
}

bool RouteContext::param_id(const std::string& name, std::uint64_t& out) const {
  const std::string& text = param(name);
  if (text.empty()) return false;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

HttpResponse invoke_handler(const RouteHandler& handler, RouteContext& ctx) {
  try {
    return handler(ctx);
  } catch (const InvalidArgument& e) {
    return error_envelope(400, "invalid_argument", e.what());
  } catch (const IoError& e) {
    return error_envelope(400, "bad_payload", e.what());
  } catch (const std::exception& e) {
    return error_envelope(500, "internal", e.what());
  }
}

Router::Router() : counters_(1) {}  // slot 0 = the (unmatched) aggregate

std::vector<std::string> Router::split_segments(const std::string& path) {
  std::vector<std::string> out;
  std::size_t pos = 1;  // skip the leading '/'
  while (pos <= path.size()) {
    std::size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    out.push_back(path.substr(pos, slash - pos));
    pos = slash + 1;
  }
  return out;
}

Router& Router::add(const std::string& method, const std::string& pattern, RouteHandler handler) {
  PREEMPT_REQUIRE(!pattern.empty() && pattern.front() == '/',
                  "route pattern must start with '/': " + pattern);
  PREEMPT_REQUIRE(handler != nullptr, "route " + pattern + " needs a handler");
  Route route;
  route.method = method;
  route.pattern = pattern;
  for (const std::string& seg : split_segments(pattern)) {
    const bool capture = seg.size() >= 2 && seg.front() == '{' && seg.back() == '}';
    route.segments.push_back(capture ? seg.substr(1, seg.size() - 2) : seg);
    route.is_capture.push_back(capture);
    PREEMPT_REQUIRE(!capture || !route.segments.back().empty(),
                    "empty capture name in pattern " + pattern);
  }
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
  {
    // add() must not race dispatch() anyway (the route table is setup-only),
    // but counters_ is lock-guarded, so honour the discipline here too.
    const LockGuard lock(metrics_mutex_);
    counters_.resize(routes_.size() + 1);
  }
  return *this;
}

Router& Router::use(Middleware middleware) {
  PREEMPT_REQUIRE(middleware != nullptr, "null middleware");
  middlewares_.push_back(std::move(middleware));
  return *this;
}

bool Router::match(const Route& route, const std::vector<std::string>& segments,
                   std::map<std::string, std::string>& params) {
  if (route.segments.size() != segments.size()) return false;
  std::map<std::string, std::string> captured;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (route.is_capture[i]) {
      captured[route.segments[i]] = url_decode(segments[i]);
    } else if (route.segments[i] != segments[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

void Router::record(std::size_t slot, double elapsed_ms, int status) const {
  const LockGuard lock(metrics_mutex_);
  Counters& c = counters_[slot];
  ++c.requests;
  if (status >= 400) ++c.errors;
  c.total_ms += elapsed_ms;
  c.max_ms = std::max(c.max_ms, elapsed_ms);
}

HttpResponse Router::dispatch(const HttpRequest& request) const {
  const std::vector<std::string> segments = split_segments(request.path());

  // Resolve the route first so middleware (and metrics) see its identity.
  const Route* matched = nullptr;
  std::size_t slot = 0;  // 0 = unmatched aggregate; route i lives in slot i+1
  std::map<std::string, std::string> params;
  std::set<std::string> allowed;  // methods of path-matching routes
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    std::map<std::string, std::string> p;
    if (!match(routes_[i], segments, p)) continue;
    allowed.insert(routes_[i].method);
    if (matched == nullptr && routes_[i].method == request.method) {
      matched = &routes_[i];
      slot = i + 1;
      params = std::move(p);
    }
  }

  RouteContext ctx;
  ctx.request = &request;
  ctx.params = std::move(params);
  ctx.route = matched != nullptr ? matched->pattern : "(unmatched)";

  // Exceptions are translated to envelopes *inside* the terminal so the
  // middleware chain still decorates (and logs) errored responses exactly
  // like returned ones.
  NextHandler terminal = [&]() -> HttpResponse {
    if (matched != nullptr) return invoke_handler(matched->handler, ctx);
    if (!allowed.empty()) {
      std::string allow;
      for (const std::string& m : allowed) allow += (allow.empty() ? "" : ", ") + m;
      HttpResponse r = error_envelope(405, "method_not_allowed",
                                      request.method + " not supported by " + request.path());
      r.headers["allow"] = allow;
      return r;
    }
    return error_envelope(404, "not_found", "no route for " + request.path());
  };

  // Wrap middlewares inside-out so the first registered runs outermost.
  NextHandler chain = std::move(terminal);
  for (auto it = middlewares_.rbegin(); it != middlewares_.rend(); ++it) {
    const Middleware& mw = *it;
    chain = [&mw, &ctx, inner = std::move(chain)]() { return mw(ctx, inner); };
  }

  const auto started = std::chrono::steady_clock::now();
  HttpResponse response;
  try {
    response = chain();
  } catch (const std::exception& e) {
    // Backstop for middleware bugs; handler exceptions never reach here.
    response = error_envelope(500, "internal", e.what());
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count();
  record(slot, elapsed_ms, response.status);
  if (!ctx.request_id.empty()) response.headers["x-request-id"] = ctx.request_id;
  return response;
}

std::vector<RouteMetrics> Router::metrics() const {
  std::vector<RouteMetrics> out;
  out.reserve(routes_.size() + 1);
  const LockGuard lock(metrics_mutex_);
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    RouteMetrics m;
    m.method = routes_[i].method;
    m.pattern = routes_[i].pattern;
    m.requests = counters_[i + 1].requests;
    m.errors = counters_[i + 1].errors;
    m.total_ms = counters_[i + 1].total_ms;
    m.max_ms = counters_[i + 1].max_ms;
    out.push_back(std::move(m));
  }
  RouteMetrics unmatched;
  unmatched.method = "*";
  unmatched.pattern = "(unmatched)";
  unmatched.requests = counters_[0].requests;
  unmatched.errors = counters_[0].errors;
  unmatched.total_ms = counters_[0].total_ms;
  unmatched.max_ms = counters_[0].max_ms;
  out.push_back(std::move(unmatched));
  return out;
}

JsonValue Router::metrics_json() const {
  JsonArray rows;
  std::uint64_t total = 0;
  for (const RouteMetrics& m : metrics()) {
    if (m.pattern == "(unmatched)" && m.requests == 0) continue;
    total += m.requests;
    JsonObject row;
    row.emplace_back("method", m.method);
    row.emplace_back("route", m.pattern);
    row.emplace_back("requests", m.requests);
    row.emplace_back("errors", m.errors);
    row.emplace_back("mean_latency_ms", m.mean_ms());
    row.emplace_back("max_latency_ms", m.max_ms);
    rows.emplace_back(std::move(row));
  }
  JsonObject obj;
  obj.emplace_back("requests_total", total);
  obj.emplace_back("routes", std::move(rows));
  return JsonValue(std::move(obj));
}

std::string Router::metrics_prometheus() const {
  // Label values per the exposition format: backslash, double-quote and
  // newline must be escaped inside label quotes.
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  };
  const std::vector<RouteMetrics> snapshot = metrics();
  // value_of returns the rendered sample: counters as exact integers (a
  // float rendering would freeze a counter's visible value once it crossed
  // the mantissa precision, breaking rate()), gauges in %.6g.
  auto series = [&](const std::string& name, const std::string& help, const char* type,
                    auto value_of) {
    std::string out = "# HELP " + name + " " + help + "\n# TYPE " + name + " " + type + "\n";
    for (const RouteMetrics& m : snapshot) {
      if (m.pattern == "(unmatched)" && m.requests == 0) continue;
      out += name + "{method=\"" + escape(m.method) + "\",route=\"" + escape(m.pattern) +
             "\"} " + value_of(m) + "\n";
    }
    return out;
  };
  auto gauge = [](double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return std::string(buf);
  };
  std::string out;
  out += series("preempt_http_requests_total", "Requests handled per route.", "counter",
                [](const RouteMetrics& m) { return std::to_string(m.requests); });
  out += series("preempt_http_errors_total", "Responses with status >= 400 per route.",
                "counter", [](const RouteMetrics& m) { return std::to_string(m.errors); });
  out += series("preempt_http_request_duration_ms_mean", "Mean handler latency (ms).",
                "gauge", [&](const RouteMetrics& m) { return gauge(m.mean_ms()); });
  out += series("preempt_http_request_duration_ms_max", "Max handler latency (ms).", "gauge",
                [&](const RouteMetrics& m) { return gauge(m.max_ms); });
  return out;
}

Middleware request_id_middleware() {
  // Process-wide monotonic ids; good enough for correlating loopback logs.
  auto counter = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [counter](RouteContext& ctx, const NextHandler& next) {
    const auto it = ctx.req().headers.find("x-request-id");
    ctx.request_id = it != ctx.req().headers.end() && !it->second.empty()
                         ? it->second
                         : "req-" + std::to_string(counter->fetch_add(1) + 1);
    return next();
  };
}

Middleware access_log_middleware() {
  return [](RouteContext& ctx, const NextHandler& next) {
    const HttpResponse response = next();
    PREEMPT_LOG_INFO << ctx.req().method << " " << ctx.req().target << " -> " << response.status
                     << " route=" << ctx.route
                     << (ctx.request_id.empty() ? "" : " id=" + ctx.request_id);
    return response;
  };
}

}  // namespace preempt::api
