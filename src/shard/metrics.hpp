// Coordinator-side observability for sharded sweeps.
//
// One process-global registry (the coordinator and the daemon share a
// process in tests, the self-check, and the single-binary CLI, so the
// daemon's GET /v1/metrics can export coordinator counters without any
// plumbing between the two). Per worker endpoint it tracks how many shards
// were dispatched / retried / hedged / failed / completed and the completed
// shards' wall latencies, summarised as p50/p99.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"

namespace preempt::shard {

/// One worker's counters as exported (latencies already reduced).
struct WorkerMetrics {
  std::string endpoint;
  std::uint64_t dispatched = 0;  ///< shard dispatch attempts (incl. re-dispatch)
  std::uint64_t retried = 0;     ///< backoff retries of a dispatch/poll
  std::uint64_t hedged = 0;      ///< hedge duplicates sent to this worker
  std::uint64_t failed = 0;      ///< attempts abandoned (worker marked dead)
  std::uint64_t completed = 0;   ///< shards whose result this worker supplied
  double p50_seconds = 0.0;      ///< completed-shard latency percentiles
  double p99_seconds = 0.0;
};

class ShardMetricsRegistry {
 public:
  static ShardMetricsRegistry& instance();

  void record_dispatch(const std::string& endpoint);
  void record_retry(const std::string& endpoint);
  void record_hedge(const std::string& endpoint);
  void record_failure(const std::string& endpoint);
  void record_completion(const std::string& endpoint, double latency_seconds);

  /// Endpoint-sorted snapshot.
  std::vector<WorkerMetrics> snapshot() const;

  /// {"workers":[{...}...], "shards_dispatched": N, ...} — merged into the
  /// daemon's /v1/metrics JSON under the "shard" key.
  JsonValue to_json() const;

  /// preempt_shard_* series in the exposition format (counters rendered as
  /// exact integers, matching Router::metrics_prometheus).
  std::string prometheus() const;

  /// Drop all state (tests and the self-check isolate their runs with this).
  void reset();

 private:
  struct Worker {
    std::uint64_t dispatched = 0;
    std::uint64_t retried = 0;
    std::uint64_t hedged = 0;
    std::uint64_t failed = 0;
    std::uint64_t completed = 0;
    std::vector<double> latencies_seconds;
  };

  ShardMetricsRegistry() = default;

  mutable Mutex mutex_{"shard.metrics"};
  std::map<std::string, Worker> workers_ PREEMPT_GUARDED_BY(mutex_);
};

}  // namespace preempt::shard
