#include "shard/partition.hpp"

#include "common/error.hpp"
#include "scenario/scenario.hpp"

namespace preempt::shard {

std::vector<std::vector<std::size_t>> partition_cells(std::size_t cell_count,
                                                      std::size_t shard_count) {
  if (shard_count == 0) throw InvalidArgument("partition_cells: shard_count must be >= 1");
  const std::size_t shards = shard_count < cell_count ? shard_count : cell_count;
  std::vector<std::vector<std::size_t>> out(shards);
  for (std::size_t i = 0; i < cell_count; ++i) out[i % shards].push_back(i);
  return out;
}

std::string shard_body_json(const std::vector<scenario::ScenarioSpec>& cells,
                            const std::vector<std::size_t>& shard,
                            const std::string& label) {
  JsonArray cell_json;
  cell_json.reserve(shard.size());
  for (const std::size_t index : shard) {
    if (index >= cells.size()) throw InvalidArgument("shard_body_json: cell index out of range");
    cell_json.push_back(scenario::to_json(cells[index]));
  }
  JsonObject body;
  body.emplace_back("cells", JsonValue(std::move(cell_json)));
  body.emplace_back("label", label);
  return JsonValue(std::move(body)).dump();
}

void adopt_shard_result(const std::vector<scenario::ScenarioSpec>& cells,
                        const std::vector<std::size_t>& shard,
                        const JsonValue& shard_result, std::vector<JsonValue>& results,
                        std::vector<bool>& have_result) {
  const JsonValue* reported = shard_result.find("cells");
  if (reported == nullptr || !reported->is_array()) {
    throw InvalidArgument("shard result missing \"cells\" array");
  }
  const JsonArray& rows = reported->as_array();
  if (rows.size() != shard.size()) {
    throw InvalidArgument("shard result has " + std::to_string(rows.size()) +
                          " cells, expected " + std::to_string(shard.size()));
  }
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const std::size_t global = shard[k];
    if (global >= cells.size()) {
      throw InvalidArgument("adopt_shard_result: cell index out of range");
    }
    const std::string name = rows[k].string_or("name", "");
    if (name != cells[global].name) {
      throw InvalidArgument("shard result cell " + std::to_string(k) + " is \"" + name +
                            "\", expected \"" + cells[global].name + "\"");
    }
    const JsonValue* result = rows[k].find("result");
    if (result == nullptr) {
      throw InvalidArgument("shard result cell \"" + name + "\" missing \"result\"");
    }
    results[global] = *result;
    have_result[global] = true;
  }
}

JsonValue merge_report(const std::vector<scenario::ScenarioSpec>& cells,
                       const std::vector<JsonValue>& results,
                       const std::vector<bool>& have_result) {
  JsonArray rows;
  rows.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!have_result[i]) continue;
    // Same row shape and key order as scenario::to_json(SweepReport): the
    // spec is re-rendered locally, so only "result" carries worker bytes —
    // and those round-trip bit-exactly through the JSON writer.
    JsonObject row;
    row.emplace_back("name", cells[i].name);
    row.emplace_back("spec", scenario::to_json(cells[i]));
    row.emplace_back("result", results[i]);
    rows.push_back(JsonValue(std::move(row)));
  }
  JsonObject report;
  report.emplace_back("cells", JsonValue(std::move(rows)));
  return JsonValue(std::move(report));
}

}  // namespace preempt::shard
