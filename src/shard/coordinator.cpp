#include "shard/coordinator.hpp"

#include <charconv>
#include <chrono>
#include <memory>
#include <thread>

#include "api/api_client.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "shard/metrics.hpp"
#include "shard/partition.hpp"

namespace preempt::shard {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

Clock::duration from_seconds(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(seconds));
}

enum class ShardState { kPending, kRunning, kDone, kFailed };

struct WorkerState {
  std::uint16_t port = 0;
  std::string endpoint;
  std::unique_ptr<api::ApiClient> client;
  bool alive = true;
  WorkerRunStats stats;
};

struct AttemptState {
  std::size_t shard = 0;
  std::size_t worker = 0;
  std::uint64_t job_id = 0;
  bool submitted = false;
  bool hedge = false;
  bool abandoned = false;
  std::size_t failures = 0;  ///< consecutive transport failures
  Clock::time_point started{};
  Clock::time_point next_action{};
};

}  // namespace

std::string to_string(ShardEvent event) {
  switch (event) {
    case ShardEvent::kDispatched:
      return "dispatched";
    case ShardEvent::kAllDispatched:
      return "all_dispatched";
    case ShardEvent::kShardDone:
      return "shard_done";
    case ShardEvent::kWorkerDead:
      return "worker_dead";
    case ShardEvent::kRedispatch:
      return "redispatch";
    case ShardEvent::kHedged:
      return "hedged";
  }
  return "unknown";
}

ShardCoordinator::ShardCoordinator(CoordinatorOptions options) : options_(std::move(options)) {
  if (options_.workers.empty()) {
    throw InvalidArgument("shard coordinator needs at least one worker");
  }
  if (options_.max_attempts == 0) {
    throw InvalidArgument("shard coordinator max_attempts must be >= 1");
  }
}

ShardOutcome ShardCoordinator::run(const scenario::SweepSpec& sweep) {
  return run_cells(scenario::expand(sweep));
}

ShardOutcome ShardCoordinator::run_cells(std::vector<scenario::ScenarioSpec> cells) {
  if (cells.empty()) throw InvalidArgument("shard coordinator given no cells");

  ShardMetricsRegistry& registry = ShardMetricsRegistry::instance();
  const auto emit = [&](ShardEvent event, std::size_t shard, const std::string& endpoint) {
    if (options_.observer) options_.observer(ShardEventInfo{event, shard, endpoint});
  };

  // --- fixed run state -----------------------------------------------------
  const std::size_t shard_count =
      options_.shards != 0 ? options_.shards : options_.workers.size();
  const std::vector<std::vector<std::size_t>> shards =
      partition_cells(cells.size(), shard_count);
  std::vector<std::string> bodies;
  bodies.reserve(shards.size());
  for (const std::vector<std::size_t>& shard : shards) {
    bodies.push_back(shard_body_json(cells, shard, options_.label));
  }

  std::vector<WorkerState> workers;
  workers.reserve(options_.workers.size());
  for (const std::uint16_t port : options_.workers) {
    WorkerState w;
    w.port = port;
    w.endpoint = "127.0.0.1:" + std::to_string(port);
    w.client = std::make_unique<api::ApiClient>(port);
    w.client->set_recv_timeout(options_.request_timeout_seconds);
    w.stats.endpoint = w.endpoint;
    workers.push_back(std::move(w));
  }

  // --- mutable run state ---------------------------------------------------
  std::vector<ShardState> shard_state(shards.size(), ShardState::kPending);
  std::vector<bool> ever_dispatched(shards.size(), false);
  std::vector<bool> hedged(shards.size(), false);
  std::vector<AttemptState> attempts;
  std::vector<JsonValue> results(cells.size());
  std::vector<bool> have_result(cells.size(), false);
  ShardOutcome outcome;
  bool announced_all_dispatched = false;
  std::size_t redispatch_cursor = 0;  // rotates re-dispatch load over survivors
  const Clock::time_point run_started = Clock::now();
  const Clock::time_point run_deadline =
      run_started + from_seconds(options_.run_deadline_seconds);

  const auto live_attempts_for = [&](std::size_t shard) {
    std::size_t n = 0;
    for (const AttemptState& a : attempts) {
      if (!a.abandoned && a.shard == shard) ++n;
    }
    return n;
  };
  const auto backoff = [&](std::size_t failures) {
    double delay = options_.backoff_base_seconds;
    for (std::size_t i = 1; i < failures; ++i) delay *= 2.0;
    return delay < options_.backoff_cap_seconds ? delay : options_.backoff_cap_seconds;
  };
  const auto abandon_shard_attempts = [&](std::size_t shard) {
    for (AttemptState& a : attempts) {
      if (a.shard == shard) a.abandoned = true;
    }
  };

  // Retire a worker: every one of its live attempts is abandoned, and shards
  // left without a live attempt go back to kPending for re-dispatch.
  const auto kill_worker = [&](std::size_t wi) {
    WorkerState& w = workers[wi];
    if (!w.alive) return;
    w.alive = false;
    w.stats.alive = false;
    PREEMPT_LOG_INFO << "shard: worker " << w.endpoint << " retired after "
                     << options_.max_attempts << " consecutive failures";
    emit(ShardEvent::kWorkerDead, 0, w.endpoint);
    for (AttemptState& a : attempts) {
      if (a.abandoned || a.worker != wi) continue;
      a.abandoned = true;
      registry.record_failure(w.endpoint);
      if (shard_state[a.shard] == ShardState::kDone ||
          shard_state[a.shard] == ShardState::kFailed) {
        continue;
      }
      if (live_attempts_for(a.shard) == 0) shard_state[a.shard] = ShardState::kPending;
    }
  };

  // One transport failure on attempt `a` against worker `wi`; the caller
  // continues the control loop either way.
  const auto attempt_failed = [&](AttemptState& a, std::size_t wi, const char* what,
                                  const std::string& detail) {
    WorkerState& w = workers[wi];
    ++a.failures;
    ++w.stats.retried;
    registry.record_retry(w.endpoint);
    PREEMPT_LOG_INFO << "shard: " << what << " to " << w.endpoint << " failed (attempt "
                     << a.failures << "/" << options_.max_attempts << "): " << detail;
    if (a.failures >= options_.max_attempts) {
      kill_worker(wi);
    } else {
      a.next_action = Clock::now() + from_seconds(backoff(a.failures));
    }
  };

  const auto complete_shard = [&](AttemptState& a, const api::BagJobInfo& job) {
    if (shard_state[a.shard] == ShardState::kDone) {
      a.abandoned = true;  // hedge loser: winner already merged
      return;
    }
    adopt_shard_result(cells, shards[a.shard], job.scenario_result, results, have_result);
    shard_state[a.shard] = ShardState::kDone;
    WorkerState& w = workers[a.worker];
    ++w.stats.completed;
    registry.record_completion(w.endpoint, seconds_between(a.started, Clock::now()));
    emit(ShardEvent::kShardDone, a.shard, w.endpoint);
    abandon_shard_attempts(a.shard);
  };

  // --- control loop --------------------------------------------------------
  while (true) {
    const Clock::time_point now = Clock::now();
    if (now >= run_deadline) {
      PREEMPT_LOG_INFO << "shard: run deadline passed with unfinished cells";
      break;
    }
    bool progress = false;

    // Re-dispatch / first dispatch: create attempts for pending shards.
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (shard_state[s] != ShardState::kPending) continue;
      std::size_t wi = workers.size();
      if (!ever_dispatched[s]) {
        // Deterministic initial spread: shard s -> configured worker s mod W.
        if (workers[s % workers.size()].alive) wi = s % workers.size();
      }
      if (wi == workers.size()) {
        for (std::size_t probe = 0; probe < workers.size(); ++probe) {
          const std::size_t candidate = (redispatch_cursor + probe) % workers.size();
          if (workers[candidate].alive) {
            wi = candidate;
            redispatch_cursor = candidate + 1;
            break;
          }
        }
      }
      if (wi == workers.size()) continue;  // no healthy worker; stays pending
      if (ever_dispatched[s]) {
        ++outcome.redispatches;
        emit(ShardEvent::kRedispatch, s, workers[wi].endpoint);
      }
      ever_dispatched[s] = true;
      shard_state[s] = ShardState::kRunning;
      AttemptState a;
      a.shard = s;
      a.worker = wi;
      a.next_action = now;
      attempts.push_back(a);
      progress = true;
    }

    // Drive every live attempt that is due.
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      AttemptState& a = attempts[i];
      if (a.abandoned || Clock::now() < a.next_action) continue;
      WorkerState& w = workers[a.worker];
      if (!w.alive) {
        a.abandoned = true;
        continue;
      }
      if (!a.submitted) {
        try {
          const api::BagJobInfo job = w.client->run_cells(bodies[a.shard]);
          a.job_id = job.id;
          a.submitted = true;
          a.failures = 0;
          a.started = Clock::now();
          a.next_action = a.started + from_seconds(options_.poll_interval_seconds);
          ++w.stats.dispatched;
          registry.record_dispatch(w.endpoint);
          emit(ShardEvent::kDispatched, a.shard, w.endpoint);
          progress = true;
        } catch (const api::ApiError& e) {
          if (e.status() != 503) throw;  // our own body was rejected: a coordinator bug
          attempt_failed(a, a.worker, "dispatch", e.what());
        } catch (const IoError& e) {
          attempt_failed(a, a.worker, "dispatch", e.what());
        }
        continue;
      }
      try {
        const api::BagJobInfo job = w.client->bag(a.job_id);
        a.failures = 0;
        if (job.status == "done") {
          complete_shard(a, job);
          progress = true;
        } else if (job.status == "failed") {
          // A cell threw. Cells are pure, so another worker would fail the
          // same way: the whole shard is terminally failed, not retried.
          PREEMPT_LOG_INFO << "shard: shard " << a.shard << " failed on " << w.endpoint
                           << ": " << job.error;
          shard_state[a.shard] = ShardState::kFailed;
          abandon_shard_attempts(a.shard);
          progress = true;
        } else {
          a.next_action = Clock::now() + from_seconds(options_.poll_interval_seconds);
        }
      } catch (const api::ApiError& e) {
        // Any poll-side API error (503 shed, job evicted/lost) counts
        // against the worker; persistent ones retire it and re-dispatch.
        attempt_failed(a, a.worker, "poll", e.what());
      } catch (const IoError& e) {
        attempt_failed(a, a.worker, "poll", e.what());
      }
    }

    // Announce full dispatch once every shard has been accepted somewhere.
    if (!announced_all_dispatched) {
      bool all = true;
      for (std::size_t s = 0; s < shards.size() && all; ++s) {
        bool has_submitted = false;
        for (const AttemptState& a : attempts) {
          if (!a.abandoned && a.shard == s && a.submitted) has_submitted = true;
        }
        all = has_submitted || shard_state[s] == ShardState::kDone ||
              shard_state[s] == ShardState::kFailed;
      }
      if (all) {
        announced_all_dispatched = true;
        emit(ShardEvent::kAllDispatched, 0, "");
      }
    }

    // Tail hedging: duplicate a lone straggler onto an idle healthy worker.
    if (options_.hedge && announced_all_dispatched) {
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (shard_state[s] != ShardState::kRunning || hedged[s]) continue;
        const AttemptState* straggler = nullptr;
        for (const AttemptState& a : attempts) {
          if (!a.abandoned && a.shard == s && a.submitted) straggler = &a;
        }
        if (straggler == nullptr || live_attempts_for(s) != 1) continue;
        if (seconds_between(straggler->started, Clock::now()) < options_.hedge_after_seconds) {
          continue;
        }
        std::size_t idle = workers.size();
        for (std::size_t wi = 0; wi < workers.size() && idle == workers.size(); ++wi) {
          if (!workers[wi].alive || wi == straggler->worker) continue;
          bool busy = false;
          for (const AttemptState& a : attempts) {
            if (!a.abandoned && a.worker == wi) busy = true;
          }
          if (!busy) idle = wi;
        }
        if (idle == workers.size()) continue;
        hedged[s] = true;
        ++outcome.hedges;
        ++workers[idle].stats.hedged;
        registry.record_hedge(workers[idle].endpoint);
        emit(ShardEvent::kHedged, s, workers[idle].endpoint);
        AttemptState h;
        h.shard = s;
        h.worker = idle;
        h.hedge = true;
        h.next_action = Clock::now();
        attempts.push_back(h);
        progress = true;
      }
    }

    // Terminal?
    bool any_open = false;
    bool any_pending = false;
    for (const ShardState state : shard_state) {
      if (state == ShardState::kPending) any_pending = true;
      if (state != ShardState::kDone && state != ShardState::kFailed) any_open = true;
    }
    if (!any_open) break;
    bool any_live = false;
    for (const AttemptState& a : attempts) {
      if (!a.abandoned) any_live = true;
    }
    bool any_healthy = false;
    for (const WorkerState& w : workers) {
      if (w.alive) any_healthy = true;
    }
    if (!any_live && (!any_pending || !any_healthy)) {
      PREEMPT_LOG_INFO << "shard: no live attempts and no healthy worker to re-dispatch to";
      break;
    }
    if (!progress) std::this_thread::sleep_for(from_seconds(options_.poll_interval_seconds));
  }

  // --- gather --------------------------------------------------------------
  outcome.report = merge_report(cells, results, have_result);
  outcome.complete = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (have_result[i]) continue;
    outcome.complete = false;
    outcome.unfinished_cells.push_back(cells[i].name);
  }
  for (WorkerState& w : workers) outcome.workers.push_back(w.stats);
  return outcome;
}

std::vector<std::uint16_t> parse_workers(const std::string& text) {
  std::vector<std::uint16_t> ports;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace.
    while (!token.empty() && (token.front() == ' ' || token.front() == '\t')) token.erase(0, 1);
    while (!token.empty() && (token.back() == ' ' || token.back() == '\t')) token.pop_back();
    if (token.empty()) {
      throw InvalidArgument("--workers: empty entry in list \"" + text + "\"");
    }
    const std::size_t colon = token.rfind(':');
    if (colon != std::string::npos) {
      const std::string host = token.substr(0, colon);
      if (host != "127.0.0.1" && host != "localhost") {
        throw InvalidArgument("--workers: host \"" + host +
                              "\" unsupported (the client dials loopback only; use "
                              "127.0.0.1:<port>, localhost:<port> or a bare port)");
      }
      token = token.substr(colon + 1);
    }
    unsigned int value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() || value == 0 ||
        value > 65535) {
      throw InvalidArgument("--workers: bad port \"" + token + "\"");
    }
    ports.push_back(static_cast<std::uint16_t>(value));
  }
  return ports;
}

}  // namespace preempt::shard
