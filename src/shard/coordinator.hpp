// Sharded sweep coordinator: scatter scenario cells over a fleet of
// preempt-batchd workers, gather the per-cell results back into one report.
//
// The coordinator expands the sweep locally, partitions cells round-robin
// (src/shard/partition.hpp), dispatches each shard to a worker via the
// keep-alive ApiClient (POST /v1/scenarios/run, 202 + poll), and merges
// worker results by global cell index — so for the same seed the merged
// report is byte-identical to the single-node `run_sweep` report
// (scenario::run is a pure function of the spec; workers contribute no
// state of their own).
//
// Robustness model, all driven from one single-threaded control loop:
//  * every request carries a receive deadline (a worker that accepts the
//    socket but never answers costs one timeout, not a hang);
//  * transport failures (connect refused, IoTimeout, 503 shed) retry with
//    bounded exponential backoff; a worker that exhausts its attempts is
//    marked dead and its in-flight shards re-dispatch to survivors;
//  * optional tail hedging duplicates a straggling shard onto an idle
//    healthy worker — first completion wins, the loser is discarded
//    (duplicated work is safe precisely because cells are pure);
//  * when cells cannot finish (every worker dead, or the run deadline
//    passes) the coordinator returns a terminal partial-failure outcome
//    naming the unfinished cells instead of hanging.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "scenario/sweep.hpp"

namespace preempt::shard {

/// Control-loop transitions, surfaced for observability and for tests that
/// need a deterministic hook ("kill worker 0 once everything is in flight").
enum class ShardEvent {
  kDispatched,     ///< a shard's job was accepted (202) by a worker
  kAllDispatched,  ///< every shard has an in-flight attempt
  kShardDone,      ///< a shard's result was adopted into the merge
  kWorkerDead,     ///< a worker exhausted its attempts and was retired
  kRedispatch,     ///< a dead worker's shard was reassigned to a survivor
  kHedged,         ///< a straggler was duplicated onto an idle worker
};

std::string to_string(ShardEvent event);

struct ShardEventInfo {
  ShardEvent event = ShardEvent::kDispatched;
  std::size_t shard = 0;  ///< shard index (0 for kAllDispatched/kWorkerDead)
  std::string endpoint;   ///< worker involved ("" for kAllDispatched)
};

/// Per-run, per-worker accounting (the process-global ShardMetricsRegistry
/// accumulates the same counters across runs for /v1/metrics).
struct WorkerRunStats {
  std::string endpoint;
  bool alive = true;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t retried = 0;
  std::uint64_t hedged = 0;
};

struct ShardOutcome {
  /// True when every cell has a result (the merge is then byte-identical to
  /// the single-node sweep report).
  bool complete = false;
  JsonValue report;  ///< merged {"cells":[...]} (partial when !complete)
  /// Names of cells with no adopted result, grid order (empty iff complete).
  std::vector<std::string> unfinished_cells;
  std::vector<WorkerRunStats> workers;
  std::size_t redispatches = 0;
  std::size_t hedges = 0;
};

struct CoordinatorOptions {
  /// Worker daemon ports (the HTTP client is loopback-only by design).
  std::vector<std::uint16_t> workers;
  /// Shard count; 0 (the default) means one shard per worker. Capped at the
  /// cell count by partitioning.
  std::size_t shards = 0;
  std::string label = "shard";  ///< job label shown in worker listings
  /// Per-request receive deadline (seconds) on every dispatch and poll.
  double request_timeout_seconds = 10.0;
  /// Consecutive transport failures before a worker is declared dead.
  std::size_t max_attempts = 3;
  double backoff_base_seconds = 0.05;  ///< doubled per failure, up to the cap
  double backoff_cap_seconds = 1.0;
  double poll_interval_seconds = 0.005;  ///< job-status poll cadence
  /// Whole-run deadline; past it, still-running cells go unfinished.
  double run_deadline_seconds = 120.0;
  bool hedge = false;  ///< enable tail hedging
  /// Age after which a lone straggling attempt is eligible for a hedge.
  double hedge_after_seconds = 2.0;
  /// Optional event hook, called synchronously from the control loop.
  std::function<void(const ShardEventInfo&)> observer;
};

class ShardCoordinator {
 public:
  explicit ShardCoordinator(CoordinatorOptions options);

  /// Expand the sweep locally and scatter its cells. Throws InvalidArgument
  /// on empty worker lists or an invalid sweep (same validation as the
  /// single-node path).
  ShardOutcome run(const scenario::SweepSpec& sweep);

  /// Scatter an explicit, already-validated cell list (the run() form and
  /// the self-check both land here).
  ShardOutcome run_cells(std::vector<scenario::ScenarioSpec> cells);

 private:
  CoordinatorOptions options_;
};

/// Parse the CLI --workers list: comma-separated ports or host:port pairs.
/// The HTTP client only dials loopback, so hosts other than 127.0.0.1 /
/// localhost are rejected with a clear message. Throws InvalidArgument.
std::vector<std::uint16_t> parse_workers(const std::string& text);

}  // namespace preempt::shard
