#include "shard/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace preempt::shard {

namespace {

/// Nearest-rank percentile over an unsorted sample set; 0 when empty.
double percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = pct / 100.0 * static_cast<double>(samples.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

std::string gauge(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return std::string(buf);
}

std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

ShardMetricsRegistry& ShardMetricsRegistry::instance() {
  static ShardMetricsRegistry registry;
  return registry;
}

void ShardMetricsRegistry::record_dispatch(const std::string& endpoint) {
  const LockGuard lock(mutex_);
  ++workers_[endpoint].dispatched;
}

void ShardMetricsRegistry::record_retry(const std::string& endpoint) {
  const LockGuard lock(mutex_);
  ++workers_[endpoint].retried;
}

void ShardMetricsRegistry::record_hedge(const std::string& endpoint) {
  const LockGuard lock(mutex_);
  ++workers_[endpoint].hedged;
}

void ShardMetricsRegistry::record_failure(const std::string& endpoint) {
  const LockGuard lock(mutex_);
  ++workers_[endpoint].failed;
}

void ShardMetricsRegistry::record_completion(const std::string& endpoint,
                                             double latency_seconds) {
  const LockGuard lock(mutex_);
  Worker& w = workers_[endpoint];
  ++w.completed;
  w.latencies_seconds.push_back(latency_seconds);
}

std::vector<WorkerMetrics> ShardMetricsRegistry::snapshot() const {
  const LockGuard lock(mutex_);
  std::vector<WorkerMetrics> out;
  out.reserve(workers_.size());
  for (const auto& [endpoint, w] : workers_) {  // std::map: already endpoint-sorted
    WorkerMetrics m;
    m.endpoint = endpoint;
    m.dispatched = w.dispatched;
    m.retried = w.retried;
    m.hedged = w.hedged;
    m.failed = w.failed;
    m.completed = w.completed;
    m.p50_seconds = percentile(w.latencies_seconds, 50.0);
    m.p99_seconds = percentile(w.latencies_seconds, 99.0);
    out.push_back(std::move(m));
  }
  return out;
}

JsonValue ShardMetricsRegistry::to_json() const {
  JsonArray rows;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  for (const WorkerMetrics& m : snapshot()) {
    dispatched += m.dispatched;
    completed += m.completed;
    JsonObject row;
    row.emplace_back("endpoint", m.endpoint);
    row.emplace_back("dispatched", m.dispatched);
    row.emplace_back("retried", m.retried);
    row.emplace_back("hedged", m.hedged);
    row.emplace_back("failed", m.failed);
    row.emplace_back("completed", m.completed);
    row.emplace_back("p50_latency_seconds", m.p50_seconds);
    row.emplace_back("p99_latency_seconds", m.p99_seconds);
    rows.emplace_back(std::move(row));
  }
  JsonObject obj;
  obj.emplace_back("shards_dispatched", dispatched);
  obj.emplace_back("shards_completed", completed);
  obj.emplace_back("workers", std::move(rows));
  return JsonValue(std::move(obj));
}

std::string ShardMetricsRegistry::prometheus() const {
  const std::vector<WorkerMetrics> snap = snapshot();
  auto counter_series = [&](const std::string& name, const std::string& help,
                            auto value_of) {
    std::string out = "# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n";
    for (const WorkerMetrics& m : snap) {
      out += name + "{worker=\"" + escape_label(m.endpoint) + "\"} " +
             std::to_string(value_of(m)) + "\n";
    }
    return out;
  };
  std::string out;
  out += counter_series("preempt_shard_dispatched_total",
                        "Shard dispatch attempts per worker (re-dispatch included).",
                        [](const WorkerMetrics& m) { return m.dispatched; });
  out += counter_series("preempt_shard_retried_total",
                        "Backoff retries of shard requests per worker.",
                        [](const WorkerMetrics& m) { return m.retried; });
  out += counter_series("preempt_shard_hedged_total",
                        "Hedge duplicates dispatched per worker.",
                        [](const WorkerMetrics& m) { return m.hedged; });
  out += counter_series("preempt_shard_failed_total",
                        "Shard attempts abandoned per worker.",
                        [](const WorkerMetrics& m) { return m.failed; });
  out += counter_series("preempt_shard_completed_total",
                        "Shards whose adopted result came from this worker.",
                        [](const WorkerMetrics& m) { return m.completed; });
  std::string lat = "# HELP preempt_shard_latency_seconds Completed-shard latency quantiles.\n";
  lat += "# TYPE preempt_shard_latency_seconds gauge\n";
  for (const WorkerMetrics& m : snap) {
    lat += "preempt_shard_latency_seconds{worker=\"" + escape_label(m.endpoint) +
           "\",quantile=\"0.5\"} " + gauge(m.p50_seconds) + "\n";
    lat += "preempt_shard_latency_seconds{worker=\"" + escape_label(m.endpoint) +
           "\",quantile=\"0.99\"} " + gauge(m.p99_seconds) + "\n";
  }
  out += lat;
  return out;
}

void ShardMetricsRegistry::reset() {
  const LockGuard lock(mutex_);
  workers_.clear();
}

}  // namespace preempt::shard
