// Deterministic cell -> shard assignment and gather-exact merge.
//
// The coordinator expands a sweep locally (the same scenario::expand every
// single-node path uses), assigns cell i to shard i mod N, and — because a
// round-robin slice of a cartesian grid is not itself a sub-grid — dispatches
// each shard as an explicit cell list (POST /v1/scenarios/run). Merging puts
// worker results back by global cell index, so the merged report is in grid
// order no matter which worker finished when, and its bytes match the
// single-node sweep report exactly (scenario::run is a pure function of the
// spec, and JSON numbers round-trip bit-exactly through dump/parse).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "scenario/sweep.hpp"

namespace preempt::shard {

/// Global cell indices per shard. partition_cells(C, N) yields
/// min(N, C) shards; shard s holds cells {s, s+N, s+2N, ...} in ascending
/// order — a pure function of (C, N), never of timing or worker identity.
std::vector<std::vector<std::size_t>> partition_cells(std::size_t cell_count,
                                                      std::size_t shard_count);

/// The {"cells":[<spec json>...]} dispatch body for one shard.
std::string shard_body_json(const std::vector<scenario::ScenarioSpec>& cells,
                            const std::vector<std::size_t>& shard,
                            const std::string& label);

/// Pull the per-cell "result" payloads out of a worker's completed shard
/// job ({"cells":[{"name","spec","result"}...]}) into `results` at the
/// global indices in `shard`. Throws InvalidArgument when the worker's
/// answer does not line up with the dispatched cells (count or name
/// mismatch) — a merge must be exact or not happen at all.
void adopt_shard_result(const std::vector<scenario::ScenarioSpec>& cells,
                        const std::vector<std::size_t>& shard,
                        const JsonValue& shard_result, std::vector<JsonValue>& results,
                        std::vector<bool>& have_result);

/// Assemble the merged sweep report from per-cell results in global grid
/// order: {"cells":[{"name","spec","result"}...]}, byte-identical to
/// scenario::to_json(run_sweep(...)) when every cell is present. Cells
/// without a result (partial failure) are skipped — the coordinator reports
/// them separately by name.
JsonValue merge_report(const std::vector<scenario::ScenarioSpec>& cells,
                       const std::vector<JsonValue>& results,
                       const std::vector<bool>& have_result);

}  // namespace preempt::shard
