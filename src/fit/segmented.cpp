#include "fit/segmented.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/matrix.hpp"

namespace preempt::fit {

namespace {

struct HingeFit {
  std::vector<double> beta;  // {intercept, slope, hinge1, hinge2}
  double sse = std::numeric_limits<double>::infinity();
};

HingeFit solve_hinge(std::span<const double> ts, std::span<const double> fs, double b1, double b2) {
  const std::size_t n = ts.size();
  Matrix design(n, 4);
  std::vector<double> y(fs.begin(), fs.end());
  for (std::size_t i = 0; i < n; ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = ts[i];
    design(i, 2) = std::max(0.0, ts[i] - b1);
    design(i, 3) = std::max(0.0, ts[i] - b2);
  }
  HingeFit fit;
  try {
    fit.beta = qr_least_squares(design, y);
  } catch (const NumericError&) {
    return fit;  // rank-deficient grid point (no data between breakpoints)
  }
  double sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = fit.beta[0] + fit.beta[1] * design(i, 1) + fit.beta[2] * design(i, 2) +
                        fit.beta[3] * design(i, 3);
    sse += sq(pred - y[i]);
  }
  fit.sse = sse;
  return fit;
}

double eval_hinge(const std::vector<double>& beta, double b1, double b2, double t) {
  return beta[0] + beta[1] * t + beta[2] * std::max(0.0, t - b1) + beta[3] * std::max(0.0, t - b2);
}

}  // namespace

SegmentedFit fit_segmented_cdf(std::span<const double> ts, std::span<const double> fs,
                               double horizon, std::size_t grid) {
  PREEMPT_REQUIRE(ts.size() == fs.size(), "segmented fit needs equal-length arrays");
  PREEMPT_REQUIRE(ts.size() >= 8, "segmented fit needs at least 8 points");
  PREEMPT_REQUIRE(grid >= 4, "segmented fit needs a grid of at least 4");

  // Candidate breakpoints span the interior of the horizon; b1 in the first
  // half (infant phase boundary), b2 in the second half (deadline onset).
  double best_sse = std::numeric_limits<double>::infinity();
  double best_b1 = horizon / 8.0;
  double best_b2 = horizon * 7.0 / 8.0;
  std::vector<double> best_beta;
  for (std::size_t i = 1; i < grid; ++i) {
    const double b1 = horizon * 0.5 * static_cast<double>(i) / static_cast<double>(grid);
    for (std::size_t j = 1; j < grid; ++j) {
      const double b2 =
          horizon * (0.5 + 0.5 * static_cast<double>(j) / static_cast<double>(grid + 1));
      if (b2 <= b1 + horizon / static_cast<double>(grid)) continue;
      const HingeFit fit = solve_hinge(ts, fs, b1, b2);
      if (fit.sse < best_sse) {
        best_sse = fit.sse;
        best_b1 = b1;
        best_b2 = b2;
        best_beta = fit.beta;
      }
    }
  }
  PREEMPT_CHECK(!best_beta.empty(), "segmented fit found no feasible breakpoints");

  // Materialise as a monotone piecewise-linear CDF on {0, b1, b2, horizon}.
  std::vector<double> knot_t = {0.0, best_b1, best_b2, horizon};
  std::vector<double> knot_f(knot_t.size());
  for (std::size_t i = 0; i < knot_t.size(); ++i) {
    knot_f[i] = clamp01(eval_hinge(best_beta, best_b1, best_b2, knot_t[i]));
  }
  for (std::size_t i = 1; i < knot_f.size(); ++i) knot_f[i] = std::max(knot_f[i], knot_f[i - 1]);

  SegmentedFit out;
  out.break1 = best_b1;
  out.break2 = best_b2;
  out.model = std::make_unique<dist::PiecewiseLinearCdf>(knot_t, knot_f);
  out.gof = score_cdf_fit(*out.model, ts, fs, 6);  // 4 betas + 2 breakpoints
  return out;
}

}  // namespace preempt::fit
