#include "fit/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace preempt::fit {

namespace {

/// Simplex diameter: max distance of any vertex to the best one.
double simplex_diameter(const std::vector<std::vector<double>>& verts) {
  double diameter = 0.0;
  for (std::size_t i = 1; i < verts.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < verts[0].size(); ++j) {
      const double dx = verts[i][j] - verts[0][j];
      d2 += dx * dx;
    }
    diameter = std::max(diameter, std::sqrt(d2));
  }
  return diameter;
}

}  // namespace

NelderMeadResult nelder_mead(const ObjectiveFn& f, std::vector<double> p0, const Bounds& bounds,
                             const NelderMeadOptions& options) {
  const std::size_t n = p0.size();
  PREEMPT_REQUIRE(n >= 1, "nelder_mead needs at least one parameter");
  if (!bounds.empty()) {
    bounds.validate(n);
    bounds.project(p0);
  }

  auto eval = [&](std::vector<double> p) {
    if (!bounds.empty()) bounds.project(p);
    const double v = f(p);
    return std::pair{std::move(p), std::isfinite(v) ? v : std::numeric_limits<double>::max()};
  };

  {
    const double v0 = f(p0);
    if (!std::isfinite(v0)) {
      throw NumericError("nelder_mead: objective not finite at the start point");
    }
  }

  // Adaptive coefficients (Gao & Han 2012) — markedly better in dimension > 2.
  const double nd = static_cast<double>(n);
  const double alpha = 1.0;                 // reflection
  const double beta = 1.0 + 2.0 / nd;       // expansion
  const double gamma = 0.75 - 0.5 / nd;     // contraction
  const double delta = 1.0 - 1.0 / nd;      // shrink

  // Start simplex: p0 plus one perturbed vertex per axis.
  std::vector<std::vector<double>> verts(n + 1, p0);
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    double step = options.initial_step * std::abs(p0[i]);
    if (step == 0.0) step = options.initial_step;
    verts[i + 1][i] += step;
  }
  for (std::size_t i = 0; i <= n; ++i) {
    auto [p, v] = eval(verts[i]);
    verts[i] = std::move(p);
    values[i] = v;
  }

  NelderMeadResult result;
  std::vector<std::size_t> order(n + 1);
  for (result.iterations = 0; result.iterations < options.max_iterations; ++result.iterations) {
    // Sort vertices by objective (indices only — vertices can be large).
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    {
      std::vector<std::vector<double>> vs(n + 1);
      std::vector<double> fs(n + 1);
      for (std::size_t i = 0; i <= n; ++i) {
        vs[i] = std::move(verts[order[i]]);
        fs[i] = values[order[i]];
      }
      verts = std::move(vs);
      values = std::move(fs);
    }

    const double f_spread = std::abs(values[n] - values[0]);
    if (f_spread < options.f_tol || simplex_diameter(verts) < options.x_tol) {
      result.converged = true;
      result.message = "converged";
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) centroid[j] += verts[i][j];
    }
    for (double& c : centroid) c /= nd;

    auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j) {
        p[j] = centroid[j] + coeff * (centroid[j] - verts[n][j]);
      }
      return p;
    };

    auto [pr, fr] = eval(blend(alpha));  // reflect
    if (fr < values[0]) {
      auto [pe, fe] = eval(blend(alpha * beta));  // expand
      if (fe < fr) {
        verts[n] = std::move(pe);
        values[n] = fe;
      } else {
        verts[n] = std::move(pr);
        values[n] = fr;
      }
      continue;
    }
    if (fr < values[n - 1]) {  // accept reflection
      verts[n] = std::move(pr);
      values[n] = fr;
      continue;
    }
    if (fr < values[n]) {  // outside contraction
      auto [pc, fc] = eval(blend(alpha * gamma));
      if (fc <= fr) {
        verts[n] = std::move(pc);
        values[n] = fc;
        continue;
      }
    } else {  // inside contraction
      auto [pc, fc] = eval(blend(-gamma));
      if (fc < values[n]) {
        verts[n] = std::move(pc);
        values[n] = fc;
        continue;
      }
    }
    // Shrink towards the best vertex.
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        verts[i][j] = verts[0][j] + delta * (verts[i][j] - verts[0][j]);
      }
      auto [p, v] = eval(verts[i]);
      verts[i] = std::move(p);
      values[i] = v;
    }
  }

  const auto best = static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
  result.params = verts[best];
  result.value = values[best];
  if (!result.converged) result.message = "max iterations reached";
  return result;
}

}  // namespace preempt::fit
