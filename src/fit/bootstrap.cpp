#include "fit/bootstrap.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace preempt::fit {

BootstrapResult bootstrap_parameters(std::span<const double> samples, const SampleFitter& fitter,
                                     std::size_t replicates, double confidence,
                                     std::uint64_t seed) {
  PREEMPT_REQUIRE(!samples.empty(), "bootstrap needs samples");
  PREEMPT_REQUIRE(replicates >= 10, "bootstrap needs at least 10 replicates");
  PREEMPT_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");

  const std::vector<double> full_fit = fitter(samples);
  PREEMPT_REQUIRE(!full_fit.empty(), "fitter returned no parameters");
  const std::size_t n_params = full_fit.size();

  Rng rng(seed);
  std::vector<std::vector<double>> draws(n_params);
  std::vector<double> resample(samples.size());
  // One batched index draw per replicate (stream-identical to per-element
  // uniform_index calls, ~3x fewer generator round-trips).
  std::vector<std::uint64_t> indices(samples.size());
  std::size_t ok = 0;
  for (std::size_t rep = 0; rep < replicates; ++rep) {
    rng.uniform_indices(samples.size(), indices);
    for (std::size_t j = 0; j < samples.size(); ++j) resample[j] = samples[indices[j]];
    try {
      const std::vector<double> p = fitter(resample);
      PREEMPT_CHECK(p.size() == n_params, "fitter changed its parameter count");
      for (std::size_t j = 0; j < n_params; ++j) draws[j].push_back(p[j]);
      ++ok;
    } catch (const std::exception&) {
      // Degenerate resample (e.g. all-identical lifetimes); skip it.
    }
  }
  PREEMPT_REQUIRE(ok * 2 >= replicates, "more than half of the bootstrap refits failed");

  const double alpha = 1.0 - confidence;
  BootstrapResult out;
  out.replicates = ok;
  out.params.resize(n_params);
  for (std::size_t j = 0; j < n_params; ++j) {
    BootstrapParam& bp = out.params[j];
    bp.estimate = full_fit[j];
    bp.mean = mean(draws[j]);
    bp.stddev = draws[j].size() >= 2 ? stddev(draws[j]) : 0.0;
    bp.ci_lo = quantile(draws[j], alpha / 2.0);
    bp.ci_hi = quantile(draws[j], 1.0 - alpha / 2.0);
  }
  return out;
}

BootstrapResult bootstrap_parameters_parallel(std::span<const double> samples,
                                               const SampleFitter& fitter,
                                               std::size_t replicates, double confidence,
                                               std::uint64_t seed) {
  PREEMPT_REQUIRE(!samples.empty(), "bootstrap needs samples");
  PREEMPT_REQUIRE(replicates >= 10, "bootstrap needs at least 10 replicates");
  PREEMPT_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");

  const std::vector<double> full_fit = fitter(samples);
  PREEMPT_REQUIRE(!full_fit.empty(), "fitter returned no parameters");
  const std::size_t n_params = full_fit.size();

  // One slot per replicate, written by exactly one task: no locking needed,
  // and the result is independent of scheduling order.
  std::vector<std::vector<double>> replicate_fits(replicates);
  parallel_for(0, replicates, [&](std::size_t rep) {
    Rng rng(substream_seed(seed, rep));
    std::vector<std::uint64_t> indices(samples.size());
    rng.uniform_indices(samples.size(), indices);
    std::vector<double> resample(samples.size());
    for (std::size_t j = 0; j < samples.size(); ++j) resample[j] = samples[indices[j]];
    try {
      std::vector<double> p = fitter(resample);
      PREEMPT_CHECK(p.size() == n_params, "fitter changed its parameter count");
      replicate_fits[rep] = std::move(p);
    } catch (const std::exception&) {
      // Degenerate resample; leave the slot empty.
    }
  });

  std::vector<std::vector<double>> draws(n_params);
  std::size_t ok = 0;
  for (const auto& p : replicate_fits) {
    if (p.empty()) continue;
    for (std::size_t j = 0; j < n_params; ++j) draws[j].push_back(p[j]);
    ++ok;
  }
  PREEMPT_REQUIRE(ok * 2 >= replicates, "more than half of the bootstrap refits failed");

  const double alpha = 1.0 - confidence;
  BootstrapResult out;
  out.replicates = ok;
  out.params.resize(n_params);
  for (std::size_t j = 0; j < n_params; ++j) {
    BootstrapParam& bp = out.params[j];
    bp.estimate = full_fit[j];
    bp.mean = mean(draws[j]);
    bp.stddev = draws[j].size() >= 2 ? stddev(draws[j]) : 0.0;
    bp.ci_lo = quantile(draws[j], alpha / 2.0);
    bp.ci_hi = quantile(draws[j], 1.0 - alpha / 2.0);
  }
  return out;
}

}  // namespace preempt::fit
