#include "fit/goodness_of_fit.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/stats.hpp"

namespace preempt::fit {

GofStats gof_statistics(std::span<const double> observed, std::span<const double> predicted,
                        std::size_t k) {
  PREEMPT_REQUIRE(observed.size() == predicted.size(), "gof needs equal-length arrays");
  PREEMPT_REQUIRE(!observed.empty(), "gof needs at least one point");
  GofStats s;
  s.n = observed.size();
  s.k = k;
  KahanSum sse;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double e = predicted[i] - observed[i];
    sse.add(e * e);
    s.max_abs = std::max(s.max_abs, std::abs(e));
  }
  s.sse = sse.value();
  const auto n = static_cast<double>(s.n);
  s.rmse = std::sqrt(s.sse / n);

  const double mean_obs = mean(observed);
  KahanSum ss_tot;
  for (double o : observed) ss_tot.add(sq(o - mean_obs));
  s.r2 = ss_tot.value() > 0.0 ? 1.0 - s.sse / ss_tot.value() : 1.0;

  // Least-squares (Gaussian errors) information criteria.
  const double log_like_term = n * std::log(std::max(s.sse, 1e-300) / n);
  s.aic = log_like_term + 2.0 * static_cast<double>(k);
  s.bic = log_like_term + static_cast<double>(k) * std::log(n);
  return s;
}

GofStats score_cdf_fit(const dist::Distribution& model, std::span<const double> ts,
                       std::span<const double> fs, std::size_t k) {
  PREEMPT_REQUIRE(ts.size() == fs.size(), "score_cdf_fit needs equal-length arrays");
  std::vector<double> predicted(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) predicted[i] = model.cdf(ts[i]);
  return gof_statistics(fs, predicted, k);
}

}  // namespace preempt::fit
