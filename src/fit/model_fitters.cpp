#include "fit/model_fitters.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/special.hpp"
#include "common/stats.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "dist/exponentiated_weibull.hpp"
#include "dist/gamma.hpp"
#include "dist/gompertz_makeham.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"
#include "fit/curve_fit.hpp"

namespace preempt::fit {

namespace {

void validate_points(std::span<const double> ts, std::span<const double> fs) {
  PREEMPT_REQUIRE(ts.size() == fs.size(), "fit needs equal-length t/F arrays");
  PREEMPT_REQUIRE(ts.size() >= 5, "fit needs at least 5 CDF points");
  for (std::size_t i = 0; i < ts.size(); ++i) {
    PREEMPT_REQUIRE(std::isfinite(ts[i]) && ts[i] >= 0.0, "CDF abscissae must be >= 0");
    PREEMPT_REQUIRE(fs[i] >= 0.0 && fs[i] <= 1.0, "CDF ordinates must be in [0,1]");
  }
}

/// Crude rate guess: median of -ln(1-F_i)/t_i over interior points.
double guess_rate(std::span<const double> ts, std::span<const double> fs) {
  std::vector<double> rates;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] > 1e-9 && fs[i] > 1e-6 && fs[i] < 1.0 - 1e-9) {
      rates.push_back(-std::log1p(-fs[i]) / ts[i]);
    }
  }
  if (rates.empty()) return 1.0;
  return median(rates);
}

}  // namespace

FitResult fit_exponential(std::span<const double> ts, std::span<const double> fs) {
  validate_points(ts, fs);
  ModelFn model = [](double t, const std::vector<double>& p) {
    return clamp01(-std::expm1(-p[0] * t));
  };
  Bounds bounds{{1e-6}, {1e3}};
  LmResult lm = curve_fit(model, ts, fs, {guess_rate(ts, fs)}, bounds);
  FitResult out;
  out.distribution = std::make_unique<dist::Exponential>(lm.params[0]);
  out.params = lm.params;
  out.converged = lm.converged;
  out.message = lm.message;
  out.gof = score_cdf_fit(*out.distribution, ts, fs, 1);
  return out;
}

FitResult fit_weibull(std::span<const double> ts, std::span<const double> fs) {
  validate_points(ts, fs);
  // Weibull plot: ln(-ln(1-F)) = k ln λ + k ln t → linear regression in ln t.
  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] > 1e-9 && fs[i] > 1e-6 && fs[i] < 1.0 - 1e-9) {
      lx.push_back(std::log(ts[i]));
      ly.push_back(std::log(-std::log1p(-fs[i])));
    }
  }
  double k0 = 1.0, lambda0 = guess_rate(ts, fs);
  if (lx.size() >= 2) {
    const LinearFit lf = linear_regression(lx, ly);
    if (std::isfinite(lf.slope) && lf.slope > 0.05) {
      k0 = clamp(lf.slope, 0.1, 20.0);
      lambda0 = clamp(std::exp(lf.intercept / k0), 1e-5, 1e3);
    }
  }
  ModelFn model = [](double t, const std::vector<double>& p) {
    if (t <= 0.0) return 0.0;
    return clamp01(-std::expm1(-std::pow(p[0] * t, p[1])));
  };
  Bounds bounds{{1e-5, 0.05}, {1e3, 50.0}};
  LmResult lm = curve_fit(model, ts, fs, {lambda0, k0}, bounds);
  FitResult out;
  out.distribution = std::make_unique<dist::Weibull>(lm.params[0], lm.params[1]);
  out.params = lm.params;
  out.converged = lm.converged;
  out.message = lm.message;
  out.gof = score_cdf_fit(*out.distribution, ts, fs, 2);
  return out;
}

FitResult fit_gompertz_makeham(std::span<const double> ts, std::span<const double> fs) {
  validate_points(ts, fs);
  const double lambda0 = clamp(guess_rate(ts, fs), 1e-4, 10.0);
  // alpha may need to be astronomically small (a deadline-style wall at
  // t ~ 24 h requires alpha ~ e^{-24 beta}), so fit log10(alpha): a linear
  // parameterisation would break the finite-difference Jacobian across the
  // 16 orders of magnitude involved. Parameters: {lambda, log10(alpha), beta}.
  ModelFn model = [](double t, const std::vector<double>& p) {
    if (t <= 0.0) return 0.0;
    const double alpha = std::pow(10.0, p[1]);
    const double cumulative = p[0] * t + alpha / p[2] * std::expm1(p[2] * t);
    return clamp01(-std::expm1(-cumulative));
  };
  Bounds bounds{{1e-6, -28.0, 1e-3}, {10.0, 0.7, 8.0}};
  // The (alpha, beta) aging pair is strongly correlated and the landscape has
  // several basins (alpha -> 0 reduces to pure exponential); multi-start over
  // a small grid and keep the best SSE, mirroring how scipy users restart
  // curve_fit with different p0. The tiny-alpha starts seed the late-wall
  // basin (aging only matters near the horizon).
  LmResult best;
  bool have_best = false;
  auto try_start = [&](double lam, double log_alpha, double beta) {
    try {
      LmResult lm = curve_fit(model, ts, fs, {lam, log_alpha, beta}, bounds);
      if (!have_best || lm.sse < best.sse) {
        best = std::move(lm);
        have_best = true;
      }
    } catch (const NumericError&) {
      // Degenerate start (non-finite residuals); try the next one.
    }
  };
  for (double log_alpha0 : {-12.0, -8.0, -4.0, -2.0}) {
    for (double beta0 : {0.1, 0.3, 1.0, 2.0}) {
      try_start(lambda0, log_alpha0, beta0);
    }
  }
  // Ridge starts: alpha = c * beta * e^{-H beta} places the aging "wall" at
  // t ~ H; probe plausible horizons so a deadline-constrained dataset gets a
  // fighting chance (the generic grid drains into the exponential basin).
  const double horizon_guess = ts.back();
  for (double beta0 : {0.8, 1.2, 2.0}) {
    for (double c : {0.1, 1.0}) {
      const double log_alpha0 =
          std::log10(c * beta0) - horizon_guess * beta0 / std::log(10.0);
      if (log_alpha0 <= bounds.lower[1] || log_alpha0 >= bounds.upper[1]) continue;
      try_start(lambda0, log_alpha0, beta0);
      try_start(0.5 * lambda0, log_alpha0, beta0);
    }
  }
  PREEMPT_CHECK(have_best, "all Gompertz-Makeham starts failed");
  FitResult out;
  const double alpha_fit = std::pow(10.0, best.params[1]);
  out.distribution =
      std::make_unique<dist::GompertzMakeham>(best.params[0], alpha_fit, best.params[2]);
  out.params = {best.params[0], alpha_fit, best.params[2]};
  out.converged = best.converged;
  out.message = best.message;
  out.gof = score_cdf_fit(*out.distribution, ts, fs, 3);
  return out;
}

FitResult fit_bathtub(std::span<const double> ts, std::span<const double> fs, double horizon) {
  validate_points(ts, fs);
  PREEMPT_REQUIRE(horizon > 0.0, "bathtub horizon must be positive");

  // Initial guesses exploit the model's anatomy: A is the mid-life plateau of
  // the CDF; τ1 controls how fast the plateau is reached; the wall sits at b≈L.
  double plateau = 0.45;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] >= 0.4 * horizon && ts[i] <= 0.6 * horizon) plateau = fs[i];
  }
  plateau = clamp(plateau, 0.06, 0.99);
  // τ1 guess: time to reach half the plateau ≈ τ1 ln 2.
  double t_half = 0.5;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (fs[i] >= 0.5 * plateau) {
      t_half = std::max(1e-3, ts[i]);
      break;
    }
  }
  const double tau1_0 = clamp(t_half / std::log(2.0), 0.1, 10.0);

  // Parameters: p = {A, tau1, tau2, b}.
  ModelFn model = [horizon](double t, const std::vector<double>& p) {
    const double tt = clamp(t, 0.0, horizon);
    return clamp01(p[0] * (1.0 - std::exp(-tt / p[1]) + std::exp((tt - p[3]) / p[2])));
  };
  Bounds bounds{{0.05, 0.05, 0.05, 0.5 * horizon}, {1.0, 20.0, 10.0, 1.5 * horizon}};
  LmResult lm = curve_fit(model, ts, fs, {plateau, tau1_0, 0.8, horizon}, bounds);

  dist::BathtubParams params;
  params.scale = lm.params[0];
  params.tau1 = lm.params[1];
  params.tau2 = lm.params[2];
  params.deadline = lm.params[3];
  params.horizon = horizon;

  FitResult out;
  out.distribution = std::make_unique<dist::BathtubDistribution>(params);
  out.params = lm.params;
  out.converged = lm.converged;
  out.message = lm.message;
  out.gof = score_cdf_fit(*out.distribution, ts, fs, 4);
  return out;
}

FitResult fit_lognormal(std::span<const double> ts, std::span<const double> fs) {
  validate_points(ts, fs);
  // Quantile plot: Φ⁻¹(F) = (ln t − μ)/σ → regress Φ⁻¹(F) on ln t;
  // slope = 1/σ, intercept = −μ/σ.
  std::vector<double> lx, qy;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] > 1e-9 && fs[i] > 1e-6 && fs[i] < 1.0 - 1e-6) {
      lx.push_back(std::log(ts[i]));
      qy.push_back(normal_quantile(fs[i]));
    }
  }
  double mu0 = 1.0, sigma0 = 1.0;
  if (lx.size() >= 2) {
    const LinearFit lf = linear_regression(lx, qy);
    if (std::isfinite(lf.slope) && lf.slope > 1e-3) {
      sigma0 = clamp(1.0 / lf.slope, 0.05, 10.0);
      mu0 = clamp(-lf.intercept * sigma0, -10.0, 10.0);
    }
  }
  ModelFn model = [](double t, const std::vector<double>& p) {
    if (t <= 0.0) return 0.0;
    return clamp01(normal_cdf((std::log(t) - p[0]) / p[1]));
  };
  Bounds bounds{{-15.0, 0.02}, {15.0, 20.0}};
  LmResult lm = curve_fit(model, ts, fs, {mu0, sigma0}, bounds);
  FitResult out;
  out.distribution = std::make_unique<dist::LogNormal>(lm.params[0], lm.params[1]);
  out.params = lm.params;
  out.converged = lm.converged;
  out.message = lm.message;
  out.gof = score_cdf_fit(*out.distribution, ts, fs, 2);
  return out;
}

FitResult fit_gamma(std::span<const double> ts, std::span<const double> fs) {
  validate_points(ts, fs);
  const double rate0 = clamp(guess_rate(ts, fs), 1e-4, 1e2);
  ModelFn model = [](double t, const std::vector<double>& p) {
    if (t <= 0.0) return 0.0;
    return clamp01(regularized_gamma_p(p[0], p[1] * t));
  };
  Bounds bounds{{0.05, 1e-5}, {100.0, 1e3}};
  // Shape is the hard parameter: multi-start a small grid and keep best SSE.
  LmResult best;
  bool have_best = false;
  for (double alpha0 : {0.5, 1.0, 2.0, 4.0}) {
    try {
      LmResult lm = curve_fit(model, ts, fs, {alpha0, alpha0 * rate0}, bounds);
      if (!have_best || lm.sse < best.sse) {
        best = std::move(lm);
        have_best = true;
      }
    } catch (const NumericError&) {
      // Degenerate start; try the next one.
    }
  }
  PREEMPT_CHECK(have_best, "all Gamma starts failed");
  FitResult out;
  out.distribution = std::make_unique<dist::Gamma>(best.params[0], best.params[1]);
  out.params = best.params;
  out.converged = best.converged;
  out.message = best.message;
  out.gof = score_cdf_fit(*out.distribution, ts, fs, 2);
  return out;
}

FitResult fit_exponentiated_weibull(std::span<const double> ts, std::span<const double> fs) {
  validate_points(ts, fs);
  // Seed from the plain Weibull fit (γ = 1) and probe exponents on both sides:
  // γ < 1 adds early mass (infant phase), γ > 1 delays it.
  const FitResult wb = fit_weibull(ts, fs);
  const double lambda0 = wb.params[0];
  const double k0 = wb.params[1];
  ModelFn model = [](double t, const std::vector<double>& p) {
    if (t <= 0.0) return 0.0;
    const double base = -std::expm1(-std::pow(p[0] * t, p[1]));
    return clamp01(std::pow(std::max(base, 0.0), p[2]));
  };
  Bounds bounds{{1e-5, 0.05, 0.02}, {1e3, 50.0, 50.0}};
  LmResult best;
  bool have_best = false;
  for (double gamma0 : {0.2, 0.5, 1.0, 2.0, 5.0}) {
    try {
      LmResult lm = curve_fit(model, ts, fs, {lambda0, k0, gamma0}, bounds);
      if (!have_best || lm.sse < best.sse) {
        best = std::move(lm);
        have_best = true;
      }
    } catch (const NumericError&) {
      // Degenerate start; try the next one.
    }
  }
  PREEMPT_CHECK(have_best, "all exponentiated-Weibull starts failed");
  FitResult out;
  out.distribution = std::make_unique<dist::ExponentiatedWeibull>(best.params[0], best.params[1],
                                                                  best.params[2]);
  out.params = best.params;
  out.converged = best.converged;
  out.message = best.message;
  out.gof = score_cdf_fit(*out.distribution, ts, fs, 3);
  return out;
}

std::vector<FitResult> fit_all_families(std::span<const double> ts, std::span<const double> fs,
                                        double horizon) {
  std::vector<FitResult> results;
  results.push_back(fit_bathtub(ts, fs, horizon));
  results.push_back(fit_exponential(ts, fs));
  results.push_back(fit_weibull(ts, fs));
  results.push_back(fit_gompertz_makeham(ts, fs));
  return results;
}

std::vector<FitResult> fit_extended_families(std::span<const double> ts,
                                             std::span<const double> fs, double horizon) {
  std::vector<FitResult> results = fit_all_families(ts, fs, horizon);
  results.push_back(fit_lognormal(ts, fs));
  results.push_back(fit_gamma(ts, fs));
  results.push_back(fit_exponentiated_weibull(ts, fs));
  return results;
}

FitResult fit_bathtub_to_samples(std::span<const double> lifetimes, double horizon) {
  const dist::EmpiricalDistribution ecdf(lifetimes);
  const auto pts = ecdf.ecdf_points(dist::EcdfConvention::kHazen);
  return fit_bathtub(pts.t, pts.f, horizon);
}

}  // namespace preempt::fit
