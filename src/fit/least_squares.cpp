#include "fit/least_squares.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/matrix.hpp"

namespace preempt::fit {

void Bounds::project(std::vector<double>& p) const {
  if (empty()) return;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!lower.empty()) p[i] = std::max(p[i], lower[i]);
    if (!upper.empty()) p[i] = std::min(p[i], upper[i]);
  }
}

void Bounds::validate(std::size_t n) const {
  if (!lower.empty()) {
    PREEMPT_REQUIRE(lower.size() == n, "lower bound size mismatch");
  }
  if (!upper.empty()) {
    PREEMPT_REQUIRE(upper.size() == n, "upper bound size mismatch");
  }
  if (!lower.empty() && !upper.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      PREEMPT_REQUIRE(lower[i] < upper[i], "bounds must satisfy lower < upper");
    }
  }
}

namespace {

double sse_of(const std::vector<double>& r) {
  KahanSum s;
  for (double x : r) s.add(x * x);
  return s.value();
}

bool all_finite(const std::vector<double>& v) {
  return std::all_of(v.begin(), v.end(), [](double x) { return std::isfinite(x); });
}

/// Forward-difference Jacobian; switches to backward difference when a
/// parameter sits at its upper bound so evaluations stay inside the box.
Matrix numeric_jacobian(const ResidualFn& residuals, const std::vector<double>& p,
                        const std::vector<double>& r0, const Bounds& bounds, double rel_step) {
  const std::size_t m = r0.size();
  const std::size_t n = p.size();
  Matrix jac(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double h = rel_step * std::max(1.0, std::abs(p[j]));
    double direction = 1.0;
    if (!bounds.upper.empty() && p[j] + h > bounds.upper[j]) direction = -1.0;
    if (!bounds.lower.empty() && direction < 0.0 && p[j] - h < bounds.lower[j]) {
      // Parameter is pinned in a box thinner than h; shrink the step.
      const double room_up = bounds.upper.empty() ? h : bounds.upper[j] - p[j];
      const double room_dn = bounds.lower.empty() ? h : p[j] - bounds.lower[j];
      if (room_up >= room_dn) {
        direction = 1.0;
        h = std::max(1e-14, 0.5 * room_up);
      } else {
        h = std::max(1e-14, 0.5 * room_dn);
      }
    }
    std::vector<double> probe = p;
    probe[j] += direction * h;
    const std::vector<double> r1 = residuals(probe);
    PREEMPT_CHECK(r1.size() == m, "residual length changed between evaluations");
    for (std::size_t i = 0; i < m; ++i) {
      const double d = (r1[i] - r0[i]) / (direction * h);
      jac(i, j) = std::isfinite(d) ? d : 0.0;
    }
  }
  return jac;
}

}  // namespace

LmResult levenberg_marquardt(const ResidualFn& residuals, std::vector<double> p0,
                             const Bounds& bounds, const LmOptions& options) {
  PREEMPT_REQUIRE(!p0.empty(), "need at least one parameter");
  bounds.validate(p0.size());
  bounds.project(p0);

  std::vector<double> p = std::move(p0);
  std::vector<double> r = residuals(p);
  PREEMPT_REQUIRE(!r.empty(), "residual function returned no residuals");
  if (!all_finite(r)) throw NumericError("residuals are non-finite at the initial guess");
  double sse = sse_of(r);

  const std::size_t n = p.size();
  double damping = options.initial_damping;
  LmResult result;
  result.params = p;
  result.sse = sse;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const Matrix jac = numeric_jacobian(residuals, p, r, bounds, options.jacobian_rel_step);
    std::vector<double> gradient = jac.transpose_times(r);  // J^T r (≙ 1/2 ∇SSE)

    // Freeze parameters pinned at a bound whose gradient pushes outward
    // (dogbox-style active set): zero their gradient & Jacobian column.
    Matrix jac_active = jac;
    for (std::size_t j = 0; j < n; ++j) {
      const bool at_lower = !bounds.lower.empty() && p[j] <= bounds.lower[j] && gradient[j] > 0.0;
      const bool at_upper = !bounds.upper.empty() && p[j] >= bounds.upper[j] && gradient[j] < 0.0;
      if (at_lower || at_upper) {
        gradient[j] = 0.0;
        for (std::size_t i = 0; i < jac_active.rows(); ++i) jac_active(i, j) = 0.0;
      }
    }

    double gmax = 0.0;
    for (double g : gradient) gmax = std::max(gmax, std::abs(g));
    if (gmax < options.gtol) {
      result.converged = true;
      result.message = "gradient tolerance reached";
      break;
    }

    const Matrix gram = jac_active.gram();
    bool step_accepted = false;
    for (int attempt = 0; attempt < 40 && !step_accepted; ++attempt) {
      // (J^T J + damping * diag(J^T J)) delta = -J^T r
      Matrix lhs = gram;
      for (std::size_t j = 0; j < n; ++j) {
        const double d = std::max(gram(j, j), 1e-12);
        lhs(j, j) = gram(j, j) + damping * d;
      }
      std::vector<double> rhs(n);
      for (std::size_t j = 0; j < n; ++j) rhs[j] = -gradient[j];

      std::vector<double> delta;
      try {
        delta = cholesky_solve(lhs, rhs);
      } catch (const NumericError&) {
        damping *= options.damping_increase;
        continue;
      }

      std::vector<double> trial = p;
      for (std::size_t j = 0; j < n; ++j) trial[j] += delta[j];
      bounds.project(trial);

      std::vector<double> r_trial = residuals(trial);
      if (r_trial.size() != r.size() || !all_finite(r_trial)) {
        damping *= options.damping_increase;
        continue;
      }
      const double sse_trial = sse_of(r_trial);
      if (sse_trial < sse) {
        // Accepted: check convergence criteria on the accepted step.
        double step_norm = 0.0, p_norm = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          step_norm += sq(trial[j] - p[j]);
          p_norm += sq(p[j]);
        }
        const bool f_converged = (sse - sse_trial) <= options.ftol * (sse + 1e-300);
        const bool x_converged =
            std::sqrt(step_norm) <= options.xtol * (std::sqrt(p_norm) + options.xtol);
        p = std::move(trial);
        r = std::move(r_trial);
        sse = sse_trial;
        damping = std::max(1e-12, damping * options.damping_decrease);
        step_accepted = true;
        if (f_converged || x_converged) {
          result.params = p;
          result.sse = sse;
          result.converged = true;
          result.message = f_converged ? "SSE tolerance reached" : "step tolerance reached";
          return result;
        }
      } else {
        damping *= options.damping_increase;
      }
    }
    if (!step_accepted) {
      result.converged = true;  // stuck in a (possibly constrained) minimum
      result.message = "no downhill step found (local minimum)";
      break;
    }
  }

  result.params = p;
  result.sse = sse;
  if (result.message.empty()) {
    result.message = result.converged ? "converged" : "max iterations reached";
  }
  return result;
}

}  // namespace preempt::fit
