// Bootstrap confidence intervals for fitted model parameters.
//
// Resamples lifetimes with replacement, refits, and reports per-parameter
// percentile intervals — quantifies how stable the Fig. 1 fit is given the
// ~100-sample CDFs the paper works with.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace preempt::fit {

/// Fit callback: samples -> parameter vector (fixed length across calls).
using SampleFitter = std::function<std::vector<double>(std::span<const double>)>;

/// Per-parameter bootstrap summary.
struct BootstrapParam {
  double estimate = 0.0;  ///< fit on the full sample
  double mean = 0.0;      ///< bootstrap mean
  double stddev = 0.0;    ///< bootstrap standard error
  double ci_lo = 0.0;     ///< percentile CI lower bound
  double ci_hi = 0.0;     ///< percentile CI upper bound
};

struct BootstrapResult {
  std::vector<BootstrapParam> params;
  std::size_t replicates = 0;  ///< successful refits (failed refits skipped)
};

/// Run `replicates` bootstrap refits at the given confidence level (e.g. 0.95).
/// Replicates whose fit throws are skipped; at least half must succeed.
BootstrapResult bootstrap_parameters(std::span<const double> samples, const SampleFitter& fitter,
                                     std::size_t replicates = 200, double confidence = 0.95,
                                     std::uint64_t seed = 1234);

/// Parallel bootstrap on the global thread pool. Each replicate derives its
/// own RNG stream from (seed, replicate index), so the result is
/// bit-identical on any thread count. (The serial bootstrap_parameters()
/// draws one sequential stream, so the two are statistically equivalent but
/// not bit-equal.) The fitter must be thread-safe — a pure function of its
/// input span; all fitters in fit/model_fitters.hpp qualify.
BootstrapResult bootstrap_parameters_parallel(std::span<const double> samples,
                                              const SampleFitter& fitter,
                                              std::size_t replicates = 200,
                                              double confidence = 0.95,
                                              std::uint64_t seed = 1234);

}  // namespace preempt::fit
