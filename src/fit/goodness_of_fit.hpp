// Goodness-of-fit statistics for fitted preemption models.
#pragma once

#include <span>

#include "dist/distribution.hpp"

namespace preempt::fit {

/// Bundle of fit-quality metrics computed from observed vs predicted values.
struct GofStats {
  double sse = 0.0;       ///< sum of squared errors
  double rmse = 0.0;      ///< root mean squared error
  double r2 = 0.0;        ///< coefficient of determination
  double max_abs = 0.0;   ///< max |error| (KS-flavoured distance on CDF fits)
  double aic = 0.0;       ///< Akaike information criterion (LS Gaussian form)
  double bic = 0.0;       ///< Bayesian information criterion
  std::size_t n = 0;      ///< number of points
  std::size_t k = 0;      ///< number of fitted parameters
};

/// Compute all statistics given observations, predictions and the parameter
/// count k of the fitted model.
GofStats gof_statistics(std::span<const double> observed, std::span<const double> predicted,
                        std::size_t k);

/// Evaluate a model CDF on the points and score it against empirical values.
GofStats score_cdf_fit(const dist::Distribution& model, std::span<const double> ts,
                       std::span<const double> fs, std::size_t k);

}  // namespace preempt::fit
