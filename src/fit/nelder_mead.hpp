// Derivative-free simplex minimisation (Nelder-Mead with adaptive
// parameters), used where least squares does not apply — chiefly the
// censored maximum-likelihood fits in src/survival, whose objective is a
// log-likelihood rather than a residual vector.
#pragma once

#include <functional>
#include <vector>

#include "fit/least_squares.hpp"  // for Bounds

namespace preempt::fit {

/// Scalar objective f(p) to minimise.
using ObjectiveFn = std::function<double(const std::vector<double>&)>;

struct NelderMeadOptions {
  std::size_t max_iterations = 2000;
  double f_tol = 1e-10;       ///< stop when the simplex f-spread falls below this
  double x_tol = 1e-10;       ///< ... or the simplex diameter does
  double initial_step = 0.1;  ///< relative perturbation building the start simplex
};

struct NelderMeadResult {
  std::vector<double> params;  ///< best vertex found
  double value = 0.0;          ///< objective at params
  std::size_t iterations = 0;
  bool converged = false;
  std::string message;
};

/// Minimise `f` from `p0`. If `bounds` is non-empty the search is confined to
/// the box by projection (evaluations never leave it). Throws InvalidArgument
/// on dimension mismatches and NumericError if f(p0) is not finite.
NelderMeadResult nelder_mead(const ObjectiveFn& f, std::vector<double> p0,
                             const Bounds& bounds = {}, const NelderMeadOptions& options = {});

}  // namespace preempt::fit
