#include "fit/curve_fit.hpp"

#include <vector>

#include "common/error.hpp"

namespace preempt::fit {

LmResult curve_fit(const ModelFn& model, std::span<const double> xs, std::span<const double> ys,
                   std::vector<double> p0, const Bounds& bounds, const LmOptions& options) {
  PREEMPT_REQUIRE(xs.size() == ys.size(), "curve_fit needs equal-length x/y");
  PREEMPT_REQUIRE(xs.size() >= p0.size(), "curve_fit needs at least as many points as parameters");
  std::vector<double> x(xs.begin(), xs.end());
  std::vector<double> y(ys.begin(), ys.end());
  ResidualFn residuals = [model, x = std::move(x),
                          y = std::move(y)](const std::vector<double>& p) {
    std::vector<double> r(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) r[i] = model(x[i], p) - y[i];
    return r;
  };
  return levenberg_marquardt(residuals, std::move(p0), bounds, options);
}

}  // namespace preempt::fit
