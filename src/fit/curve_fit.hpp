// scipy.optimize.curve_fit-style convenience wrapper over the LM solver.
#pragma once

#include <functional>
#include <span>

#include "fit/least_squares.hpp"

namespace preempt::fit {

/// Model function y = model(x, params).
using ModelFn = std::function<double(double, const std::vector<double>&)>;

/// Fit `model` to (xs, ys) by least squares from initial guess p0, optionally
/// bounded. Mirrors scipy's curve_fit(method="dogbox") behaviour.
LmResult curve_fit(const ModelFn& model, std::span<const double> xs, std::span<const double> ys,
                   std::vector<double> p0, const Bounds& bounds = {},
                   const LmOptions& options = {});

}  // namespace preempt::fit
