// Per-family fitters: reproduce the paper's Fig. 1 methodology of fitting
// candidate failure distributions to an empirical preemption CDF by bounded
// least squares, with data-driven initial guesses.
#pragma once

#include <span>

#include "dist/bathtub.hpp"
#include "dist/distribution.hpp"
#include "fit/goodness_of_fit.hpp"
#include "fit/least_squares.hpp"

namespace preempt::fit {

/// Outcome of fitting one distribution family to ECDF points.
struct FitResult {
  dist::DistributionPtr distribution;  ///< fitted model (never null on return)
  std::vector<double> params;          ///< fitted parameter vector
  GofStats gof;                        ///< quality on the input points
  bool converged = false;
  std::string message;
};

/// Fit F(t) = 1 - e^{-λt}. Initial guess from the mean implied rate.
FitResult fit_exponential(std::span<const double> ts, std::span<const double> fs);

/// Fit F(t) = 1 - e^{-(λt)^k}. Initial guess via Weibull-plot linearisation.
FitResult fit_weibull(std::span<const double> ts, std::span<const double> fs);

/// Fit F(t) = 1 - exp(-λt - (α/β)(e^{βt} - 1)).
FitResult fit_gompertz_makeham(std::span<const double> ts, std::span<const double> fs);

/// Fit the paper's constrained-preemption model (Eq. 1) on [0, horizon].
/// Bounds follow the paper's reported ranges, widened for robustness:
/// A ∈ [0.05, 1], τ1 ∈ [0.05, 20] h, τ2 ∈ [0.05, 10] h, b ∈ [0.5, 1.5]·horizon.
FitResult fit_bathtub(std::span<const double> ts, std::span<const double> fs,
                      double horizon = 24.0);

/// Fit ln T ~ N(μ, σ²). Initial guess via normal-quantile linearisation.
FitResult fit_lognormal(std::span<const double> ts, std::span<const double> fs);

/// Fit the Gamma(α, β) lifetime. Multi-start over shapes.
FitResult fit_gamma(std::span<const double> ts, std::span<const double> fs);

/// Fit the exponentiated Weibull (ref [42], the classical bathtub-capable
/// family). Seeded from the plain Weibull fit plus a grid of exponents.
FitResult fit_exponentiated_weibull(std::span<const double> ts, std::span<const double> fs);

/// Fit every family above to the same points (the Fig. 1 comparison set).
/// Returned in a fixed order: bathtub, exponential, weibull, gompertz-makeham.
std::vector<FitResult> fit_all_families(std::span<const double> ts, std::span<const double> fs,
                                        double horizon = 24.0);

/// The widened Fig. 1 comparison: everything in fit_all_families plus
/// lognormal, gamma and exponentiated Weibull (in that order).
std::vector<FitResult> fit_extended_families(std::span<const double> ts,
                                             std::span<const double> fs, double horizon = 24.0);

/// Fit the bathtub model directly to lifetime samples (builds the Hazen ECDF
/// internally); the common entry point for trace-driven model construction.
FitResult fit_bathtub_to_samples(std::span<const double> lifetimes, double horizon = 24.0);

}  // namespace preempt::fit
