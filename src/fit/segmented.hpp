// Segmented (3-phase) linear regression on an empirical CDF — the
// "phase-wise model" the paper sketches as future work (Sec. 8): three linear
// CDF regions joined continuously at two breakpoints, found by grid search.
#pragma once

#include <span>

#include "dist/piecewise.hpp"
#include "fit/goodness_of_fit.hpp"

namespace preempt::fit {

/// Result of the segmented fit.
struct SegmentedFit {
  double break1 = 0.0;  ///< end of the infant phase (hours)
  double break2 = 0.0;  ///< start of the deadline phase (hours)
  /// Fitted continuous piecewise-linear CDF with knots at
  /// {0, break1, break2, horizon}, clamped monotone into [0, 1].
  std::unique_ptr<dist::PiecewiseLinearCdf> model;
  GofStats gof;
};

/// Fit a continuous 3-segment linear CDF to (ts, fs) by exhaustive search
/// over a breakpoint grid of `grid` candidate positions per knot; for each
/// candidate pair the segment slopes are solved in closed form (linear least
/// squares with hinge basis {1, t, (t-b1)+, (t-b2)+}).
SegmentedFit fit_segmented_cdf(std::span<const double> ts, std::span<const double> fs,
                               double horizon = 24.0, std::size_t grid = 24);

}  // namespace preempt::fit
