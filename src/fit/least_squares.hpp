// Bounded nonlinear least squares.
//
// The paper fits its model with scipy's curve_fit using the bound-constrained
// "dogbox" method; we implement the same class of solver: Levenberg–Marquardt
// with Marquardt diagonal scaling, numeric Jacobians, and box constraints
// enforced by step projection with an active-set style gradient freeze.
// Problems here are tiny (2-4 parameters, O(10^2) residuals).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace preempt::fit {

/// Residual generator: r(p) has fixed length m for every parameter vector p.
using ResidualFn = std::function<std::vector<double>(const std::vector<double>&)>;

/// Box constraints; empty vectors mean unbounded.
struct Bounds {
  std::vector<double> lower;
  std::vector<double> upper;

  bool empty() const noexcept { return lower.empty() && upper.empty(); }
  /// Clamp p into the box (no-op when unbounded).
  void project(std::vector<double>& p) const;
  /// Validate shape against an n-parameter problem.
  void validate(std::size_t n) const;
};

struct LmOptions {
  int max_iterations = 200;
  double ftol = 1e-12;          ///< relative SSE improvement tolerance
  double xtol = 1e-12;          ///< relative step-size tolerance
  double gtol = 1e-10;          ///< gradient infinity-norm tolerance
  double initial_damping = 1e-3;
  double damping_increase = 10.0;
  double damping_decrease = 0.3;
  double jacobian_rel_step = 1e-7;  ///< forward-difference relative step
};

struct LmResult {
  std::vector<double> params;
  double sse = 0.0;          ///< sum of squared residuals at the solution
  int iterations = 0;
  bool converged = false;
  std::string message;
};

/// Minimise ||r(p)||^2 subject to bounds, starting from p0 (projected into
/// the box). Throws InvalidArgument on malformed input and NumericError if
/// the residual function returns non-finite values at p0.
LmResult levenberg_marquardt(const ResidualFn& residuals, std::vector<double> p0,
                             const Bounds& bounds = {}, const LmOptions& options = {});

}  // namespace preempt::fit
