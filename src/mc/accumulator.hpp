// Streaming moment accumulators for the Monte-Carlo replication engine.
//
// Welford's online algorithm per worker shard, merged with Chan et al.'s
// pairwise formula, so mean/variance/CI come out of a parallel run without
// materialising per-replication vectors (struct-of-arrays: one accumulator
// per named metric, each holding its own running statistics).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace preempt::mc {

/// Online mean/variance/min/max over a stream of doubles. Mergeable.
class Accumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Chan et al. parallel combination; `other` may be empty.
  void merge(const Accumulator& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const noexcept {
    return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  /// Standard error of the mean (0 for fewer than two observations).
  double std_error() const noexcept;
  /// Half-width of the normal-approximation 95% CI on the mean.
  double ci95_half() const noexcept { return 1.959963984540054 * std_error(); }
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summary of one named metric across all replications.
struct MetricSummary {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double std_error = 0.0;
  double ci95_half = 0.0;
  double min = 0.0;
  double max = 0.0;
};

MetricSummary summarize(const std::string& name, const Accumulator& acc);

}  // namespace preempt::mc
