#include "mc/accumulator.hpp"

#include <cmath>

namespace preempt::mc {

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::std_error() const noexcept {
  return count_ >= 2 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

MetricSummary summarize(const std::string& name, const Accumulator& acc) {
  MetricSummary s;
  s.name = name;
  s.count = acc.count();
  s.mean = acc.mean();
  s.variance = acc.variance();
  s.stddev = acc.stddev();
  s.std_error = acc.std_error();
  s.ci95_half = acc.ci95_half();
  s.min = acc.min();
  s.max = acc.max();
  return s;
}

}  // namespace preempt::mc
