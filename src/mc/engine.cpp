#include "mc/engine.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace preempt::mc {

namespace {

/// Replications per chunk. The chunk layout is a pure function of the
/// replication count (never of thread count), so streams — and therefore
/// results — are machine-independent.
constexpr std::size_t kReplicationsPerChunk = 256;
/// Draws per chunk for sample_many_parallel.
constexpr std::size_t kDrawsPerChunk = 16384;
/// Upper bound on chunks; beyond this chunks simply grow.
constexpr std::size_t kMaxChunks = 1024;

std::size_t chunk_count(std::size_t items, std::size_t per_chunk) {
  if (items == 0) return 0;
  const std::size_t chunks = (items + per_chunk - 1) / per_chunk;
  return std::min(chunks, kMaxChunks);
}

/// Jump-derived streams: chunk 0 continues the master seed's own sequence
/// (so a one-chunk run is bit-identical to plain sequential code), each
/// further chunk is 2^128 draws ahead of the previous.
std::vector<Rng> chunk_streams(std::uint64_t seed, std::size_t chunks) {
  std::vector<Rng> streams;
  streams.reserve(chunks);
  Rng master(seed);
  for (std::size_t c = 0; c < chunks; ++c) streams.push_back(master.fork());
  return streams;
}

/// Run `task(c)` for every chunk, on the pool or inline. The pool path is
/// the work-stealing parallel_for with the caller participating, grain 1
/// (each task(c) is already a full replication chunk): which thread runs a
/// chunk is scheduling noise, because the chunk -> stream -> shard layout
/// is a pure function of the chunk index and shards merge in chunk order.
/// Exceptions rethrow (first wins) only after every chunk has finished
/// (tasks reference caller-owned state).
void for_each_chunk(std::size_t chunks, bool inline_run,
                    const std::function<void(std::size_t)>& task) {
  if (inline_run || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) task(c);
    return;
  }
  parallel_for(ThreadPool::global(), 0, chunks, task, /*grain=*/1);
}

}  // namespace

const MetricSummary& ReplicationReport::metric(std::string_view name) const {
  for (const MetricSummary& m : metrics) {
    if (m.name == name) return m;
  }
  throw InvalidArgument("unknown metric: " + std::string(name));
}

ReplicationReport run_replications(const EngineOptions& options,
                                   std::vector<std::string> metric_names,
                                   const ReplicationBody& body) {
  PREEMPT_REQUIRE(body != nullptr, "replication body must not be null");
  const std::size_t metrics = metric_names.size();
  const std::size_t chunks = chunk_count(options.replications, kReplicationsPerChunk);
  const std::size_t per_chunk =
      chunks > 0 ? (options.replications + chunks - 1) / chunks : 0;

  std::vector<Rng> streams = chunk_streams(options.seed, chunks);
  // Struct-of-arrays: chunk-major grid of per-metric accumulators, merged in
  // chunk order below so the report is independent of completion order.
  std::vector<std::vector<Accumulator>> shard(chunks, std::vector<Accumulator>(metrics));

  const bool inline_run = options.max_threads == 1 ||
                          options.replications < options.min_parallel_replications;
  for_each_chunk(chunks, inline_run, [&](std::size_t c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, options.replications);
    Rng& rng = streams[c];
    Recorder rec(shard[c]);
    for (std::size_t rep = begin; rep < end; ++rep) body(rep, rng, rec);
  });

  ReplicationReport report;
  report.replications = options.replications;
  report.chunks = chunks;
  std::vector<Accumulator> merged(metrics);
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t m = 0; m < metrics; ++m) merged[m].merge(shard[c][m]);
  }
  report.metrics.reserve(metrics);
  for (std::size_t m = 0; m < metrics; ++m) {
    report.metrics.push_back(summarize(metric_names[m], merged[m]));
  }
  return report;
}

void sample_many_parallel(const dist::Distribution& d, std::uint64_t seed,
                          std::span<double> out) {
  const std::size_t chunks = chunk_count(out.size(), kDrawsPerChunk);
  if (chunks == 0) return;
  const std::size_t per_chunk = (out.size() + chunks - 1) / chunks;
  std::vector<Rng> streams = chunk_streams(seed, chunks);
  for_each_chunk(chunks, /*inline_run=*/chunks <= 1, [&](std::size_t c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, out.size());
    d.sample_many(streams[c], out.subspan(begin, end - begin));
  });
}

}  // namespace preempt::mc
