// Batched Monte-Carlo replication engine.
//
// Replications are partitioned into a fixed number of chunks — a function of
// the replication count only, never of the machine — and each chunk gets its
// own RNG stream derived from the master seed by xoshiro jump() (2^128 draws
// apart, so streams cannot overlap). Chunks execute on the shared thread
// pool and their accumulators merge in chunk order, which makes every report
// bit-for-bit reproducible for a given (seed, replications) regardless of
// how many worker threads happen to run it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.hpp"
#include "dist/distribution.hpp"
#include "mc/accumulator.hpp"

namespace preempt::mc {

struct EngineOptions {
  std::size_t replications = 10000;
  std::uint64_t seed = 42;
  /// Execution mode: 0 = shard chunks over the global pool, 1 = run inline
  /// on the calling thread (no pool). Other values currently behave like 0
  /// (the shared pool's size wins; there is no per-call thread cap).
  /// Results are identical in every mode — only wall-clock changes.
  std::size_t max_threads = 0;
  /// Replication count below which the run stays inline regardless of
  /// max_threads (task overhead would dominate).
  std::size_t min_parallel_replications = 256;
};

/// Per-replication sink handed to the body: record(metric, value) feeds the
/// chunk-local accumulator for that metric index.
class Recorder {
 public:
  explicit Recorder(std::span<Accumulator> slots) noexcept : slots_(slots) {}
  void record(std::size_t metric, double value) noexcept { slots_[metric].add(value); }
  std::size_t metric_count() const noexcept { return slots_.size(); }

 private:
  std::span<Accumulator> slots_;
};

/// One replication: `replication` is the global index, `rng` the chunk
/// stream (never shared across threads), `rec` the metric sink.
using ReplicationBody = std::function<void(std::size_t replication, Rng& rng, Recorder& rec)>;

struct ReplicationReport {
  std::size_t replications = 0;
  std::size_t chunks = 0;
  std::vector<MetricSummary> metrics;

  /// Lookup by metric name; throws InvalidArgument if unknown.
  const MetricSummary& metric(std::string_view name) const;
};

/// Run `body` for every replication and aggregate the recorded metrics.
ReplicationReport run_replications(const EngineOptions& options,
                                   std::vector<std::string> metric_names,
                                   const ReplicationBody& body);

/// Fill `out` with draws from `d` using the same chunked jump-stream layout
/// (a pure function of seed and out.size()), sharding sample_many calls
/// across the pool. Deterministic regardless of thread count.
void sample_many_parallel(const dist::Distribution& d, std::uint64_t seed,
                          std::span<double> out);

}  // namespace preempt::mc
