// `preempt schedule` — one VM-reuse decision (Sec. 4.2): should a job of
// length T run on the existing VM of age s, or on a fresh one?
#include <ostream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "core/model.hpp"

namespace preempt::cli {

int cmd_schedule(const Args& args, std::ostream& out, std::ostream& err) {
  FlagSet flags("preempt schedule");
  add_data_flags(flags);
  flags.add_double("age", 0.0, "current VM age s (hours)");
  flags.add_double("job", 6.0, "job length T (hours)");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);

  const auto lifetimes = lifetimes_from_flags(flags, err);
  const auto model = core::PreemptionModel::fit(lifetimes);
  const double age = flags.get_double("age");
  const double job = flags.get_double("job");

  const auto decision = model.reuse_decision(age, job);
  out << "model: A=" << model.params().scale << " tau1=" << model.params().tau1
      << " tau2=" << model.params().tau2 << " b=" << model.params().deadline << "\n";
  out << "E[T | existing VM, age " << age << " h] = " << decision.expected_existing << " h\n";
  out << "E[T | fresh VM]                = " << decision.expected_fresh << " h\n";
  out << "P(fail | existing)             = " << model.job_failure_probability(age, job) << "\n";
  out << "P(fail | fresh)                = " << model.job_failure_probability(0.0, job) << "\n";
  out << "decision: " << (decision.reuse ? "REUSE the existing VM" : "LAUNCH A FRESH VM")
      << "\n";
  return 0;
}

}  // namespace preempt::cli
