// `preempt fit` — fit candidate lifetime models to observations (Fig. 1).
#include <ostream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "core/analysis.hpp"
#include "fit/bootstrap.hpp"
#include "survival/mle.hpp"
#include "survival/observation.hpp"

namespace preempt::cli {

int cmd_fit(const Args& args, std::ostream& out, std::ostream& err) {
  FlagSet flags("preempt fit");
  add_data_flags(flags);
  flags.add_double("horizon", 24.0, "maximum VM lifetime L (hours)");
  flags.add_bool("extended", "also fit lognormal, gamma and exponentiated Weibull");
  flags.add_bool("mle", "additionally run the censored bathtub MLE");
  flags.add_bool("cdf", "print the fitted-vs-empirical CDF series");
  flags.add_int("bootstrap", 0,
                "replicates for parallel bootstrap confidence intervals (0 = off)");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);

  const std::vector<double> lifetimes = lifetimes_from_flags(flags, err);
  const double horizon = flags.get_double("horizon");
  const auto scope = flags.get_bool("extended") ? core::ComparisonScope::kExtended
                                                : core::ComparisonScope::kPaper;
  const auto cmp = core::compare_distributions(lifetimes, horizon, scope);

  out << "fitted " << lifetimes.size() << " lifetimes (horizon " << horizon << " h)\n\n";
  if (flags.get_bool("cdf")) out << cmp.cdf_table(25) << "\n";
  out << cmp.summary_table() << "\n";
  out << "best fit: " << cmp.best().distribution->name() << "\n";

  if (flags.get_bool("mle")) {
    survival::BathtubMleOptions opts;
    opts.horizon = horizon;
    const auto mle =
        survival::fit_bathtub_mle(survival::SurvivalData::all_events(lifetimes), opts);
    out << "\ncensored bathtub MLE: A=" << mle.params[0] << " tau1=" << mle.params[1]
        << " tau2=" << mle.params[2] << " b=" << mle.params[3]
        << "  (lnL=" << mle.log_likelihood << ", AIC=" << mle.aic << ")\n";
  }

  if (const auto replicates = flags.get_int("bootstrap"); replicates > 0) {
    const auto boot = fit::bootstrap_parameters_parallel(
        lifetimes,
        [horizon](std::span<const double> xs) {
          return fit::fit_bathtub_to_samples(xs, horizon).params;
        },
        static_cast<std::size_t>(replicates));
    static const char* kNames[] = {"A", "tau1", "tau2", "b"};
    out << "\nbootstrap 95% CIs (" << boot.replicates << " replicates):\n";
    for (std::size_t i = 0; i < boot.params.size(); ++i) {
      const auto& p = boot.params[i];
      out << "  " << kNames[i] << " = " << p.estimate << "  [" << p.ci_lo << ", " << p.ci_hi
          << "]  (se " << p.stddev << ")\n";
    }
  }
  return 0;
}

}  // namespace preempt::cli
