// `preempt bags` — drive a running controller daemon's async /v1/bags API
// through the typed ApiClient: submit a bag (optionally waiting for the
// report), poll one job, or list jobs with the server-side pagination
// filters. Pairs with `preempt-batchd`:
//
//   preempt-batchd --port 8080 &
//   preempt bags --port 8080 --app shapes --jobs 50 --vms 16 --wait
//   preempt bags --port 8080 --list --status done --limit 10
//   preempt bags --port 8080 --id 1
#include <iomanip>
#include <ostream>

#include "api/api_client.hpp"
#include "cli/cli_util.hpp"
#include "cli/commands.hpp"

namespace preempt::cli {

namespace {

void print_job(const api::BagJobInfo& job, std::ostream& out) {
  out << "job " << job.id << ": " << job.status << "  app=" << job.app << " jobs=" << job.jobs
      << " vms=" << job.vms << " policy=" << job.policy << " seed=" << job.seed;
  if (job.replications > 1) out << " replications=" << job.replications;
  out << "\n";
  if (job.status == "failed") {
    out << "  error: " << job.error << "\n";
    return;
  }
  if (!job.report) return;
  const api::BagReport& r = *job.report;
  out << "  jobs completed        " << r.jobs_completed << "\n";
  out << "  makespan              " << r.makespan_hours << " h (+"
      << 100.0 * r.increase_fraction << "% vs ideal)\n";
  out << "  cost per job          $" << r.cost_per_job << " (on-demand $"
      << r.on_demand_cost_per_job << ", " << r.cost_reduction_factor << "x cheaper)\n";
  out << "  preemptions           " << r.preemptions << " hitting jobs, " << r.preemptions_total
      << " total\n";
  out << "  wasted                " << r.wasted_hours << " h across " << r.vms_launched
      << " VM launches\n";
  for (const auto& [name, stat] : r.metrics) {
    out << "  " << std::left << std::setw(22) << name << std::right << stat.mean << " +/- "
        << stat.std_error << " (95% CI half-width " << stat.ci95 << ")\n";
  }
}

}  // namespace

int cmd_bags(const Args& args, std::ostream& out, std::ostream& err) {
  FlagSet flags("preempt bags");
  flags.add_int("port", 0, "port of a running preempt-batchd (required)");
  flags.add_string("app", "nanoconfinement", "workload: nanoconfinement|shapes|lulesh");
  flags.add_int("jobs", 50, "jobs in the bag");
  flags.add_int("vms", 16, "cluster size");
  flags.add_int("seed", 42, "simulation seed");
  flags.add_string("policy", "model", "reuse policy: model|memoryless|fresh");
  flags.add_int("replications", 1, "Monte-Carlo replications (>1 adds std_error/ci95)");
  flags.add_bool("wait", "block until the submitted bag finishes and print the report");
  flags.add_double("timeout", 120.0, "--wait poll bound (seconds)");
  flags.add_int("id", 0, "poll one existing job instead of submitting");
  flags.add_bool("list", "list jobs instead of submitting");
  flags.add_string("status", "", "--list filter: queued|running|done|failed");
  flags.add_int("limit", 20, "--list page size");
  flags.add_int("offset", 0, "--list page offset");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);

  if (flags.get_int("port") <= 0) {
    err << "preempt bags: --port of a running preempt-batchd is required\n";
    return 2;
  }
  const api::ApiClient client(static_cast<std::uint16_t>(flags.get_int("port")));

  if (flags.get_bool("list")) {
    const api::BagPage page =
        client.list_bags(flags.get_string("status"),
                         static_cast<std::size_t>(flags.get_int("limit")),
                         static_cast<std::size_t>(flags.get_int("offset")));
    out << page.jobs.size() << " of " << page.total << " jobs (offset " << page.offset
        << "):\n";
    for (const auto& job : page.jobs) {
      out << "  " << job.id << "  " << std::left << std::setw(8) << job.status << std::right
          << job.app << " x" << job.jobs;
      if (job.report) out << "  " << job.report->cost_reduction_factor << "x vs on-demand";
      out << "\n";
    }
    return 0;
  }

  if (flags.is_set("id")) {
    print_job(client.bag(static_cast<std::uint64_t>(flags.get_int("id"))), out);
    return 0;
  }

  api::BagSubmission submission;
  submission.app = flags.get_string("app");
  submission.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  submission.vms = static_cast<std::size_t>(flags.get_int("vms"));
  submission.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  submission.policy = flags.get_string("policy");
  submission.replications = static_cast<std::size_t>(flags.get_int("replications"));

  api::BagJobInfo job = client.submit_bag(submission);
  out << "submitted bag job " << job.id << " (status " << job.status << ")\n";
  if (flags.get_bool("wait")) {
    job = client.wait_for_bag(job.id, flags.get_double("timeout"));
    print_job(job, out);
    return job.status == "done" ? 0 : 1;
  }
  out << "poll it with: preempt bags --port " << flags.get_int("port") << " --id " << job.id
      << "\n";
  return 0;
}

}  // namespace preempt::cli
