#include "cli/cli_util.hpp"

#include <ostream>

#include "common/error.hpp"
#include "trace/generator.hpp"
#include "trace/public_dataset.hpp"
#include "trace/vm_catalog.hpp"

namespace preempt::cli {

void add_regime_flags(FlagSet& flags) {
  flags.add_string("type", "n1-highcpu-16", "VM type (n1-highcpu-{2,4,8,16,32})");
  flags.add_string("zone", "us-east1-b",
                   "zone (us-central1-c, us-central1-f, us-west1-a, us-east1-b)");
  flags.add_string("period", "day", "launch period: day | night");
  flags.add_string("workload", "batch", "workload inside the VM: batch | idle");
}

trace::RegimeKey regime_from_flags(const FlagSet& flags) {
  trace::RegimeKey key;
  const auto type = trace::vm_type_from_string(flags.get_string("type"));
  PREEMPT_REQUIRE(type.has_value(), "unknown --type '" + flags.get_string("type") + "'");
  key.type = *type;
  const auto zone = trace::zone_from_string(flags.get_string("zone"));
  PREEMPT_REQUIRE(zone.has_value(), "unknown --zone '" + flags.get_string("zone") + "'");
  key.zone = *zone;
  const auto period = trace::day_period_from_string(flags.get_string("period"));
  PREEMPT_REQUIRE(period.has_value(), "unknown --period '" + flags.get_string("period") + "'");
  key.period = *period;
  const auto workload = trace::workload_from_string(flags.get_string("workload"));
  PREEMPT_REQUIRE(workload.has_value(),
                  "unknown --workload '" + flags.get_string("workload") + "'");
  key.workload = *workload;
  return key;
}

void add_data_flags(FlagSet& flags) {
  flags.add_string("input", "",
                   "CSV of observed lifetimes (tolerant schema); when absent, a synthetic "
                   "campaign is generated");
  flags.add_int("count", 200, "synthetic sample size when no --input is given");
  flags.add_int("seed", 42, "RNG seed for synthetic data");
  add_regime_flags(flags);
}

std::vector<double> lifetimes_from_flags(const FlagSet& flags, std::ostream& err) {
  const trace::RegimeKey regime = regime_from_flags(flags);
  if (const std::string path = flags.get_string("input"); !path.empty()) {
    trace::ImportOptions opts;
    opts.default_type = regime.type;
    opts.default_zone = regime.zone;
    auto report = trace::load_public_csv(path, opts);
    for (const auto& w : report.warnings) err << "warning: " << w << "\n";
    // Filter to the requested regime only when the flags were given
    // explicitly; otherwise analyse the file as a whole.
    trace::Dataset ds = std::move(report.dataset);
    if (flags.is_set("type")) ds = ds.by_type(regime.type);
    if (flags.is_set("zone")) ds = ds.by_zone(regime.zone);
    if (flags.is_set("period")) ds = ds.by_period(regime.period);
    PREEMPT_REQUIRE(!ds.empty(), "no rows left after filtering '" + path + "'");
    return ds.lifetimes();
  }
  trace::CampaignConfig cfg;
  cfg.regime = regime;
  cfg.vm_count = static_cast<std::size_t>(flags.get_int("count"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  return trace::generate_campaign(cfg).lifetimes();
}

}  // namespace preempt::cli
