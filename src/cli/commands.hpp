// The `preempt` command-line tool, as a library.
//
// Every subcommand is a function of (args, out, err) returning a process
// exit code, so the test suite drives them exactly as a shell user would —
// tools/preempt.cpp is a thin argv shim over run_cli().
//
// Subcommands:
//   generate    synthesize a measurement campaign and emit CSV
//   fit         fit candidate lifetime models to a CSV of observations
//   lifetime    expected-lifetime (Eq. 3) table across VM types/zones
//   schedule    one VM-reuse decision (Sec. 4.2 rule)
//   checkpoint  DP checkpoint schedule vs Young-Daly (Sec. 4.3)
//   simulate    run the batch computing service on a bag of jobs (Sec. 5/6.3)
//   drift       stream lifetimes through the KS + CUSUM change-point monitors
//   portfolio   allocate a bag across VmType x Zone x DayPeriod spot markets
//   bags        submit/poll/list async bag jobs on a running preempt-batchd
//   scenario    list/show/run/sweep declarative scenarios (src/scenario)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace preempt::cli {

using Args = std::vector<std::string>;

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err);
int cmd_fit(const Args& args, std::ostream& out, std::ostream& err);
int cmd_lifetime(const Args& args, std::ostream& out, std::ostream& err);
int cmd_schedule(const Args& args, std::ostream& out, std::ostream& err);
int cmd_checkpoint(const Args& args, std::ostream& out, std::ostream& err);
int cmd_simulate(const Args& args, std::ostream& out, std::ostream& err);
int cmd_drift(const Args& args, std::ostream& out, std::ostream& err);
int cmd_portfolio(const Args& args, std::ostream& out, std::ostream& err);
int cmd_bags(const Args& args, std::ostream& out, std::ostream& err);
int cmd_scenario(const Args& args, std::ostream& out, std::ostream& err);

/// Top-level usage text (list of subcommands).
std::string main_usage();

/// Dispatch `args[0]` as a subcommand; returns the exit code. Unknown or
/// missing commands print usage to `err` and return 2. Library errors are
/// caught and reported as one-line messages (exit 1).
int run_cli(const Args& args, std::ostream& out, std::ostream& err);

}  // namespace preempt::cli
