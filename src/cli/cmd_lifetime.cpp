// `preempt lifetime` — expected lifetime (Eq. 3) across VM types and zones,
// the paper's MTTF substitute for coarse-grained server selection.
#include <ostream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "trace/ground_truth.hpp"
#include "trace/vm_catalog.hpp"

namespace preempt::cli {

int cmd_lifetime(const Args& args, std::ostream& out, std::ostream& /*err*/) {
  FlagSet flags("preempt lifetime");
  flags.add_string("zone", "us-east1-b", "zone to tabulate");
  flags.add_string("period", "day", "launch period: day | night");
  flags.add_string("workload", "batch", "workload: batch | idle");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);

  const auto zone = trace::zone_from_string(flags.get_string("zone"));
  PREEMPT_REQUIRE(zone.has_value(), "unknown --zone '" + flags.get_string("zone") + "'");
  const auto period = trace::day_period_from_string(flags.get_string("period"));
  PREEMPT_REQUIRE(period.has_value(), "unknown --period");
  const auto workload = trace::workload_from_string(flags.get_string("workload"));
  PREEMPT_REQUIRE(workload.has_value(), "unknown --workload");

  Table table({"vm_type", "vcpus", "E[lifetime] eq3 (h)", "mean incl. atom (h)", "F(6h)",
               "preemptible $/h", "on-demand $/h"},
              "ground-truth catalog @ " + flags.get_string("zone") + ", " +
                  flags.get_string("period") + ", " + flags.get_string("workload"));
  for (const auto& spec : trace::all_vm_specs()) {
    trace::RegimeKey key{spec.type, *zone, *period, *workload};
    const auto d = trace::ground_truth_distribution(key);
    table.add_row({spec.name, std::to_string(spec.vcpus),
                   fmt_double(d.expected_lifetime_eq3(), 2), fmt_double(d.mean(), 2),
                   fmt_double(d.cdf(6.0), 3), fmt_double(spec.preemptible_per_hour, 4),
                   fmt_double(spec.on_demand_per_hour, 4)});
  }
  out << table;
  return 0;
}

}  // namespace preempt::cli
