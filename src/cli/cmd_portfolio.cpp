// `preempt portfolio` — allocate a bag of jobs across the spot-market grid.
#include <ostream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "portfolio/multi_market_service.hpp"
#include "portfolio/optimizer.hpp"
#include "trace/public_dataset.hpp"

namespace preempt::cli {

int cmd_portfolio(const Args& args, std::ostream& out, std::ostream& err) {
  FlagSet flags("preempt portfolio");
  flags.add_int("jobs", 100, "bag size to allocate");
  flags.add_double("job-hours", 0.25, "failure-free per-job running time (hours)");
  flags.add_double("risk", 0.05, "max per-job failure probability");
  flags.add_double("lambda", 0.5, "correlated-failure penalty weight");
  flags.add_string("input", "", "observations CSV (public schema); synthetic study if absent");
  flags.add_int("vms-per-cell", 60, "synthetic study size per (type, zone) cell");
  flags.add_int("seed", 2019, "synthetic study seed");
  flags.add_double("horizon", 24.0, "maximum VM lifetime L (hours)");
  flags.add_int("threads", 0, "fit threads (0 = hardware concurrency)");
  flags.add_bool("exhaustive", "also run the exhaustive reference solver (small bags)");
  flags.add_bool("simulate", "execute the allocation on the multi-market service");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);
  // Guard the int->size_t casts below: a negative value would wrap to ~2^64.
  PREEMPT_REQUIRE(flags.get_int("jobs") > 0, "--jobs must be positive");
  PREEMPT_REQUIRE(flags.get_int("vms-per-cell") > 0, "--vms-per-cell must be positive");
  PREEMPT_REQUIRE(flags.get_int("seed") >= 0, "--seed must be non-negative");
  PREEMPT_REQUIRE(flags.get_int("threads") >= 0 && flags.get_int("threads") <= 4096,
                  "--threads must be in [0, 4096]");

  portfolio::MarketCatalog::Options catalog_options;
  catalog_options.horizon_hours = flags.get_double("horizon");
  auto catalog = [&] {
    if (const std::string path = flags.get_string("input"); !path.empty()) {
      auto report = trace::load_public_csv(path);
      if (report.skipped > 0) {
        err << "warning: skipped " << report.skipped << " rows of " << path << "\n";
      }
      return portfolio::MarketCatalog(std::move(report.dataset), catalog_options);
    }
    return portfolio::MarketCatalog::synthetic(
        static_cast<std::size_t>(flags.get_int("vms-per-cell")),
        static_cast<std::uint64_t>(flags.get_int("seed")), catalog_options);
  }();

  {
    ThreadPool pool(static_cast<std::size_t>(flags.get_int("threads")));
    catalog.fit_all(pool);  // all ~40 market fits run concurrently
  }

  portfolio::PortfolioConfig config;
  config.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  config.job_hours = flags.get_double("job-hours");
  config.risk_bound = flags.get_double("risk");
  config.correlation_penalty = flags.get_double("lambda");
  const portfolio::PortfolioOptimizer optimizer(catalog, config);
  const auto allocation = optimizer.optimize_greedy();

  out << "portfolio over " << catalog.size() << " markets (" << optimizer.eligible_count()
      << " within risk bound " << config.risk_bound << ")\n\n";

  Table table({"market", "price_h", "p_fail", "e_makespan_h", "cost_job", "jobs"},
              "Bag allocation across spot markets");
  for (const auto& quote : optimizer.quotes()) {
    if (allocation.counts[quote.market] == 0) continue;
    table.add_row({catalog.market(quote.market).label(),
                   fmt_double(catalog.market(quote.market).price_per_hour, 4),
                   fmt_double(quote.failure_probability, 4),
                   fmt_double(quote.expected_makespan_hours, 4),
                   fmt_double(quote.expected_cost, 4),
                   std::to_string(allocation.counts[quote.market])});
  }
  out << table << "\n";
  out << "allocated " << allocation.total() << " jobs across " << allocation.markets_used
      << " markets; expected cost $" << fmt_double(allocation.base_cost, 4)
      << " (mean-risk objective " << fmt_double(allocation.objective, 4) << ")\n";

  if (flags.get_bool("exhaustive")) {
    const auto reference = optimizer.optimize_exhaustive();
    const double gap = reference.objective > 0.0
                           ? allocation.objective / reference.objective - 1.0
                           : 0.0;
    out << "exhaustive reference objective " << fmt_double(reference.objective, 4)
        << "; greedy gap " << fmt_double(100.0 * gap, 2) << "%\n";
  }

  if (flags.get_bool("simulate")) {
    portfolio::MultiMarketConfig sim_config;
    sim_config.job_hours = config.job_hours;
    sim_config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    portfolio::MultiMarketService service(catalog, sim_config);
    const auto report = service.run(allocation);
    out << "\nsimulated: " << report.jobs_completed << " jobs completed in "
        << fmt_double(report.makespan_hours, 2) << " h, cost $"
        << fmt_double(report.total_cost, 4) << " ($" << fmt_double(report.cost_per_job, 4)
        << "/job), " << report.rebalances << " drift rebalances\n";
    Table sim_table({"market", "assigned", "completed", "preempt", "in", "out", "cost"},
                    "Per-market execution");
    for (const auto& m : report.markets) {
      sim_table.add_row({catalog.market(m.market).label(), std::to_string(m.assigned),
                         std::to_string(m.completed), std::to_string(m.preemptions),
                         std::to_string(m.migrated_in), std::to_string(m.migrated_out),
                         fmt_double(m.cost, 4)});
    }
    out << sim_table;
  }
  return 0;
}

}  // namespace preempt::cli
