// `preempt drift` — stream observed lifetimes through the KS and CUSUM
// change-point monitors (the paper's Sec. 8 continuous-update loop).
#include <ostream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/random.hpp"
#include "dist/bathtub.hpp"
#include "core/cusum.hpp"
#include "core/drift.hpp"
#include "core/model.hpp"

namespace preempt::cli {

int cmd_drift(const Args& args, std::ostream& out, std::ostream& err) {
  FlagSet flags("preempt drift");
  add_data_flags(flags);
  flags.add_int("baseline", 150, "observations used to fit the baseline model");
  // The baseline here is itself estimated from the stream head, so both
  // monitors run with Lilliefors-style inflated defaults; 1.36 / 8 would be
  // the right constants only for an exactly known baseline.
  flags.add_double("ks-critical", 1.90, "KS alarm constant c in c/sqrt(n)");
  flags.add_double("cusum-threshold", 12.0, "CUSUM alarm threshold h (std-dev units)");
  flags.add_bool("inject-drift",
                 "synthetic demo: switch the generating regime mid-stream (tau1 halved, "
                 "plateau +0.15) so the monitors have a real change-point to find");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);

  std::vector<double> lifetimes = lifetimes_from_flags(flags, err);
  std::size_t injected_at = 0;
  if (flags.get_bool("inject-drift")) {
    // Regenerate the second half from a shifted law (provider policy change).
    auto params = trace::ground_truth_params(regime_from_flags(flags));
    params.tau1 *= 0.5;
    params.scale = std::min(1.0, params.scale + 0.15);
    const dist::BathtubDistribution shifted(params);
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")) ^ 0xd21fULL);
    injected_at = lifetimes.size() / 2;
    for (std::size_t i = injected_at; i < lifetimes.size(); ++i) {
      lifetimes[i] = shifted.sample(rng);
    }
  }
  const auto n_baseline = static_cast<std::size_t>(flags.get_int("baseline"));
  PREEMPT_REQUIRE(lifetimes.size() > n_baseline + 10,
                  "need at least baseline+10 observations (have " +
                      std::to_string(lifetimes.size()) + ")");

  const std::vector<double> head(lifetimes.begin(),
                                 lifetimes.begin() + static_cast<std::ptrdiff_t>(n_baseline));
  const auto model = core::PreemptionModel::fit(head);
  out << "baseline fitted from " << n_baseline << " lifetimes: A=" << model.params().scale
      << " tau1=" << model.params().tau1 << " b=" << model.params().deadline << "\n";

  core::DriftDetector::Options ks_opts;
  ks_opts.ks_critical = flags.get_double("ks-critical");
  core::DriftDetector ks(model, ks_opts);
  core::CusumDetector::Options cs_opts;
  cs_opts.threshold = flags.get_double("cusum-threshold");
  core::CusumDetector cusum(model.distribution(), cs_opts);

  std::size_t ks_alarm_at = 0, cusum_alarm_at = 0;
  for (std::size_t i = n_baseline; i < lifetimes.size(); ++i) {
    const auto ks_status = ks.observe(lifetimes[i]);
    const auto cs_status = cusum.observe(lifetimes[i]);
    if (ks_status.drift && ks_alarm_at == 0) ks_alarm_at = i;
    if (cs_status.alarm && cusum_alarm_at == 0) cusum_alarm_at = i;
  }

  const auto final_ks = ks.status();
  const auto final_cs = cusum.status();
  out << "streamed " << lifetimes.size() - n_baseline << " observations";
  if (injected_at) out << " (regime change injected at observation " << injected_at << ")";
  out << "\n";
  out << "KS monitor:    ks=" << fmt_double(final_ks.ks, 4)
      << " threshold=" << fmt_double(final_ks.threshold, 4)
      << (ks_alarm_at ? "  ALARM at observation " + std::to_string(ks_alarm_at)
                      : "  no drift detected")
      << "\n";
  out << "CUSUM monitor: shorter=" << fmt_double(final_cs.stat_shorter, 3)
      << " longer=" << fmt_double(final_cs.stat_longer, 3)
      << (cusum_alarm_at ? "  ALARM at observation " + std::to_string(cusum_alarm_at)
                         : "  no drift detected")
      << "\n";
  return (ks_alarm_at || cusum_alarm_at) ? 3 : 0;  // distinct exit code for drift
}

}  // namespace preempt::cli
