// Subcommand dispatch for the `preempt` tool.
#include <ostream>

#include "cli/commands.hpp"
#include "common/error.hpp"

namespace preempt::cli {

std::string main_usage() {
  return "usage: preempt <command> [flags]\n"
         "\n"
         "commands:\n"
         "  generate    synthesize a preemption measurement campaign (CSV)\n"
         "  fit         fit candidate lifetime models to observations\n"
         "  lifetime    expected-lifetime table across VM types (Eq. 3)\n"
         "  schedule    one VM-reuse decision (Sec. 4.2)\n"
         "  checkpoint  DP checkpoint schedule vs Young-Daly (Sec. 4.3)\n"
         "  simulate    run the batch computing service on a bag of jobs\n"
         "  drift       change-point monitoring of a lifetime stream (Sec. 8)\n"
         "  portfolio   allocate a bag of jobs across spot markets\n"
         "  bags        submit/poll/list async bag jobs on a running preempt-batchd\n"
         "  scenario    list/show/run/sweep declarative experiment scenarios\n"
         "\n"
         "run `preempt <command> --help` for per-command flags.\n";
}

int run_cli(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    (args.empty() ? err : out) << main_usage();
    return args.empty() ? 2 : 0;
  }
  const std::string command = args[0];
  const Args rest(args.begin() + 1, args.end());
  try {
    if (command == "generate") return cmd_generate(rest, out, err);
    if (command == "fit") return cmd_fit(rest, out, err);
    if (command == "lifetime") return cmd_lifetime(rest, out, err);
    if (command == "schedule") return cmd_schedule(rest, out, err);
    if (command == "checkpoint") return cmd_checkpoint(rest, out, err);
    if (command == "simulate") return cmd_simulate(rest, out, err);
    if (command == "drift") return cmd_drift(rest, out, err);
    if (command == "portfolio") return cmd_portfolio(rest, out, err);
    if (command == "bags") return cmd_bags(rest, out, err);
    if (command == "scenario") return cmd_scenario(rest, out, err);
  } catch (const Error& e) {
    err << "preempt " << command << ": " << e.what() << "\n";
    return 1;
  }
  err << "preempt: unknown command '" << command << "'\n\n" << main_usage();
  return 2;
}

}  // namespace preempt::cli
