// `preempt scenario` — the declarative scenario layer from the command line.
//
//   preempt scenario list
//   preempt scenario show --name paper-fig08-checkpointing
//   preempt scenario run --name paper-fig09-quick [--seed 7] [--replications 5]
//   preempt scenario run --file my_scenario.json --json
//   preempt scenario sweep --name paper-fig09a-cost --axes "vms=16,32;policy=model,fresh"
//   preempt scenario sweep --name fleet-quick --workers 8080,8081,8082 [--hedge]
//
// `run` executes a named or file-provided scenario (a named sweep runs all
// of its cells); `sweep` layers extra axes on top before expanding. Cells
// with replications > 1 report mean +/- 95% CI per headline metric from the
// src/mc replication engine.
#include <fstream>
#include <ostream>
#include <sstream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"
#include "shard/coordinator.hpp"

namespace preempt::cli {

namespace {

using scenario::ScenarioKind;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;
using scenario::SweepSpec;

SweepSpec load_sweep(const FlagSet& flags) {
  const std::string name = flags.get_string("name");
  const std::string file = flags.get_string("file");
  if (!name.empty() && !file.empty()) {
    throw InvalidArgument("--name and --file are mutually exclusive");
  }
  if (!name.empty()) {
    const scenario::NamedScenario* named = scenario::find_builtin(name);
    if (named == nullptr) {
      throw InvalidArgument("no scenario named '" + name +
                            "' (run `preempt scenario list`)");
    }
    return named->sweep;
  }
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) throw IoError("cannot open scenario file '" + file + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return scenario::sweep_from_json(parse_json(text.str()));
  }
  throw InvalidArgument("one of --name or --file is required");
}

/// CLI overrides routed through the shared override rules (fields swept by
/// the scenario's own axes are rejected rather than silently clobbered).
void apply_overrides(const FlagSet& flags, SweepSpec& sweep) {
  for (const char* field : {"seed", "replications", "jobs", "vms"}) {
    if (flags.is_set(field)) {
      scenario::apply_override(sweep, field,
                               JsonValue(static_cast<double>(flags.get_int(field))));
    }
  }
}

/// The metric a sweep table reports per cell, by scenario kind.
const char* headline_metric(ScenarioKind kind) {
  if (kind == ScenarioKind::kCheckpoint) return "makespan_hours";
  if (kind == ScenarioKind::kFleet) return "total_energy_kwh";
  return "cost_per_job";
}

/// (mean, ci95) of the headline metric; single runs report the value with a
/// zero half-width.
std::pair<double, double> headline_value(const ScenarioSpec& spec, const ScenarioResult& r) {
  const std::string wanted = headline_metric(spec.kind);
  for (const auto& m : r.metrics) {
    if (m.name == wanted) return {m.mean, m.ci95_half};
  }
  switch (spec.kind) {
    case ScenarioKind::kService: return {r.report.cost_per_job, 0.0};
    case ScenarioKind::kCheckpoint: return {r.makespan.mean_hours, r.makespan.ci95_half_hours};
    case ScenarioKind::kPortfolio: return {r.market_report.cost_per_job, 0.0};
    case ScenarioKind::kFleet: return {r.fleet_report.total_energy_kwh, 0.0};
  }
  return {0.0, 0.0};
}

void print_single(const ScenarioSpec& spec, const ScenarioResult& result, std::ostream& out) {
  const std::string title =
      (spec.name.empty() ? std::string("scenario") : spec.name) + " (" +
      scenario::to_string(spec.kind) + ", " + std::to_string(spec.replications) +
      (spec.replications == 1 ? " replication)" : " replications)");
  Table table({"metric", "value"}, title);
  switch (spec.kind) {
    case ScenarioKind::kService: {
      const sim::ServiceReport& r = result.report;
      table.add_row({"jobs completed", std::to_string(r.jobs_completed)});
      table.add_row({"makespan (h)", fmt_double(r.makespan_hours, 3)});
      table.add_row({"increase over ideal", fmt_double(r.increase_fraction * 100.0, 2) + "%"});
      table.add_row({"cost per job ($)", fmt_double(r.cost_per_job, 4)});
      table.add_row({"on-demand cost per job ($)", fmt_double(r.on_demand_cost_per_job, 4)});
      table.add_row({"cost reduction", fmt_double(r.cost_reduction_factor, 2) + "x"});
      table.add_row({"preemptions hitting jobs", std::to_string(r.preemptions)});
      table.add_row({"VMs launched", std::to_string(r.vms_launched)});
      table.add_row({"wasted hours", fmt_double(r.wasted_hours, 3)});
      break;
    }
    case ScenarioKind::kCheckpoint: {
      const policy::SimulatedMakespan& m = result.makespan;
      table.add_row({"scheduler", spec.scheduler});
      table.add_row({"job (h)", fmt_double(spec.job_hours, 2)});
      table.add_row({"mean makespan (h)", fmt_double(m.mean_hours, 4)});
      table.add_row({"increase over job", fmt_double((m.mean_hours - spec.job_hours) /
                                                         spec.job_hours * 100.0, 2) + "%"});
      table.add_row({"95% CI half-width (h)", fmt_double(m.ci95_half_hours, 4)});
      table.add_row({"mean preemptions", fmt_double(m.mean_preemptions, 3)});
      table.add_row({"runs", std::to_string(m.runs)});
      break;
    }
    case ScenarioKind::kPortfolio: {
      const portfolio::MultiMarketReport& r = result.market_report;
      table.add_row({"jobs completed", std::to_string(r.jobs_completed)});
      table.add_row({"jobs abandoned", std::to_string(r.jobs_abandoned)});
      table.add_row({"makespan (h)", fmt_double(r.makespan_hours, 3)});
      table.add_row({"cost per job ($)", fmt_double(r.cost_per_job, 4)});
      table.add_row({"rebalances", std::to_string(r.rebalances)});
      break;
    }
    case ScenarioKind::kFleet: {
      const fleet::FleetReport& r = result.fleet_report;
      table.add_row({"placement", spec.fleet.placement});
      table.add_row({"machines", std::to_string(r.machines)});
      table.add_row({"tasks completed", std::to_string(r.tasks_completed) + "/" +
                                            std::to_string(r.tasks_submitted)});
      for (std::size_t tier = 0; tier < fleet::kSlaTiers; ++tier) {
        table.add_row({"sla" + std::to_string(tier) + " violation rate",
                       fmt_double(r.violation_rate(tier) * 100.0, 2) + "% (" +
                           std::to_string(r.sla_violations[tier]) + "/" +
                           std::to_string(r.sla_tasks[tier]) + ")"});
      }
      table.add_row({"total energy (kWh)", fmt_double(r.total_energy_kwh, 2)});
      table.add_row({"migrations", std::to_string(r.migrations)});
      table.add_row({"machine preemptions", std::to_string(r.machine_preemptions)});
      table.add_row({"task restarts", std::to_string(r.task_preemptions)});
      table.add_row({"makespan (h)", fmt_double(r.makespan_hours, 3)});
      table.add_row({"avg response (h)", fmt_double(r.avg_response_hours, 4)});
      break;
    }
  }
  out << table;
  if (!result.metrics.empty()) {
    Table stats({"metric", "mean", "std_error", "ci95", "min", "max"},
                "replication statistics (src/mc)");
    for (const auto& m : result.metrics) {
      stats.add_row({m.name, fmt_double(m.mean, 4), fmt_double(m.std_error, 4),
                     fmt_double(m.ci95_half, 4), fmt_double(m.min, 4), fmt_double(m.max, 4)});
    }
    out << stats;
  }
}

int run_cells(const SweepSpec& sweep, bool as_json, std::ostream& out) {
  const std::vector<ScenarioSpec> cells = scenario::expand(sweep);
  if (cells.size() == 1 && !as_json) {
    const ScenarioResult result = scenario::run(cells.front());
    print_single(cells.front(), result, out);
    return 0;
  }
  scenario::SweepReport report;
  for (const ScenarioSpec& cell : cells) {
    report.cells.push_back({cell, scenario::run(cell)});
  }
  if (as_json) {
    out << scenario::to_json(report).dump(2) << "\n";
    return 0;
  }
  Table table({"cell", "reps", "metric", "mean", "ci95"},
              std::to_string(report.cells.size()) + " scenario cells");
  for (const auto& cell : report.cells) {
    const auto [mean, ci95] = headline_value(cell.spec, cell.result);
    table.add_row({cell.spec.name.empty() ? "(unnamed)" : cell.spec.name,
                   std::to_string(cell.spec.replications), headline_metric(cell.spec.kind),
                   fmt_double(mean, 4), cell.spec.replications > 1
                                            ? "+/-" + fmt_double(ci95, 4)
                                            : std::string("-")});
  }
  out << table;
  return 0;
}

/// Scatter the sweep over a fleet of preempt-batchd workers (src/shard).
/// --json output is the merged report — byte-identical to the single-node
/// `run --json` output for the same seed when every cell finishes.
int run_sharded(const SweepSpec& sweep, const FlagSet& flags, bool as_json, std::ostream& out,
                std::ostream& err) {
  shard::CoordinatorOptions options;
  options.workers = shard::parse_workers(flags.get_string("workers"));
  options.shards = static_cast<std::size_t>(flags.get_int("shards"));
  options.hedge = flags.get_bool("hedge");
  shard::ShardCoordinator coordinator(std::move(options));
  const shard::ShardOutcome outcome = coordinator.run(sweep);
  if (as_json) {
    out << outcome.report.dump(2) << "\n";
  } else {
    Table table({"worker", "alive", "dispatched", "completed", "retried", "hedged"},
                "sharded sweep over " + std::to_string(outcome.workers.size()) + " worker(s)");
    for (const shard::WorkerRunStats& w : outcome.workers) {
      table.add_row({w.endpoint, w.alive ? "yes" : "no", std::to_string(w.dispatched),
                     std::to_string(w.completed), std::to_string(w.retried),
                     std::to_string(w.hedged)});
    }
    out << table;
    out << "cells merged: "
        << outcome.report.find("cells")->as_array().size() << "  redispatches: "
        << outcome.redispatches << "  hedges: " << outcome.hedges
        << "  (use --json for the full merged report)\n";
  }
  if (!outcome.complete) {
    err << "sharded sweep incomplete; unfinished cells:\n";
    for (const std::string& name : outcome.unfinished_cells) err << "  " << name << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int cmd_scenario(const Args& args, std::ostream& out, std::ostream& err) {
  FlagSet flags("preempt scenario <list|show|run|sweep>");
  flags.add_string("name", "", "built-in scenario name (see `preempt scenario list`)");
  flags.add_string("file", "", "scenario or sweep JSON file instead of --name");
  flags.add_string("axes", "", "sweep axes, e.g. \"vms=16,32;policy=model,fresh\"");
  flags.add_int("seed", 42, "override the base scenario seed");
  flags.add_int("replications", 1, "override the base replication count");
  flags.add_int("jobs", 100, "override the bag size");
  flags.add_int("vms", 32, "override the cluster size");
  flags.add_bool("json", "print results as JSON instead of tables");
  flags.add_string("workers", "",
                   "scatter cells over running preempt-batchd workers, e.g. "
                   "\"8080,8081\" or \"127.0.0.1:8080,localhost:8081\"");
  flags.add_int("shards", 0, "shard count for --workers (0 = one per worker)");
  flags.add_bool("hedge", "with --workers: duplicate straggling shards onto idle workers");
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    out << flags.usage()
        << "\nverbs:\n"
           "  list   built-in scenarios\n"
           "  show   a scenario's JSON spec (+ sweep axes)\n"
           "  run    execute one scenario (or a named sweep's cells)\n"
           "  sweep  expand axes over a base scenario and run every cell\n";
    return args.empty() ? 2 : 0;
  }
  flags.parse(args);
  if (flags.positional().size() != 1) {
    err << "preempt scenario: exactly one verb expected (list|show|run|sweep)\n";
    return 2;
  }
  const std::string verb = flags.positional()[0];

  if (verb == "list") {
    Table table({"name", "kind", "cells", "summary"}, "built-in scenarios");
    for (const auto& s : scenario::builtin_scenarios()) {
      table.add_row({s.name, scenario::to_string(s.sweep.base.kind),
                     std::to_string(s.sweep.cardinality()), s.summary});
    }
    out << table;
    return 0;
  }

  SweepSpec sweep = load_sweep(flags);
  apply_overrides(flags, sweep);

  if (verb == "show") {
    out << scenario::to_json(sweep).dump(2) << "\n";
    return 0;
  }
  if (verb == "sweep") {
    if (flags.is_set("axes")) {
      for (auto& axis : scenario::parse_axes(flags.get_string("axes"))) {
        sweep.axes.push_back(std::move(axis));
      }
    }
    if (flags.is_set("workers")) return run_sharded(sweep, flags, flags.get_bool("json"), out, err);
    return run_cells(sweep, flags.get_bool("json"), out);
  }
  if (verb == "run") {
    if (flags.is_set("workers")) return run_sharded(sweep, flags, flags.get_bool("json"), out, err);
    return run_cells(sweep, flags.get_bool("json"), out);
  }
  err << "preempt scenario: unknown verb '" << verb << "' (list|show|run|sweep)\n";
  return 2;
}

}  // namespace preempt::cli
