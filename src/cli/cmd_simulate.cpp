// `preempt simulate` — run the batch computing service (Sec. 5) on a bag of
// jobs and report cost/performance (the Sec. 6.3 experiment, one command).
#include <ostream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/model.hpp"
#include "sim/service.hpp"
#include "trace/generator.hpp"

namespace preempt::cli {

namespace {

sim::Workload workload_by_name(const std::string& name) {
  for (const auto& w : sim::all_workloads()) {
    if (w.name == name) return w;
  }
  throw InvalidArgument("unknown --app '" + name +
                        "' (try: nanoconfinement, shapes, lulesh)");
}

}  // namespace

int cmd_simulate(const Args& args, std::ostream& out, std::ostream& /*err*/) {
  FlagSet flags("preempt simulate");
  flags.add_string("app", "nanoconfinement", "workload: nanoconfinement | shapes | lulesh");
  flags.add_int("jobs", 100, "jobs in the bag");
  flags.add_int("vms", 32, "cluster size (VMs)");
  flags.add_string("policy", "model", "reuse policy: model | memoryless | fresh");
  flags.add_bool("checkpointing", "enable DP checkpointing for the jobs");
  flags.add_int("seed", 42, "simulation seed");
  flags.add_string("zone", "us-east1-b", "zone whose preemption regime applies");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);

  const sim::Workload workload = workload_by_name(flags.get_string("app"));
  const auto zone = trace::zone_from_string(flags.get_string("zone"));
  PREEMPT_REQUIRE(zone.has_value(), "unknown --zone");

  sim::ServiceConfig cfg;
  cfg.vm_type = workload.vm_type;
  cfg.cluster_size = static_cast<std::size_t>(flags.get_int("vms"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.checkpointing = flags.get_bool("checkpointing");
  const std::string policy_name = flags.get_string("policy");
  const auto policy = sim::reuse_policy_from_string(policy_name);
  if (!policy) throw InvalidArgument("unknown --policy '" + policy_name + "'");
  cfg.reuse_policy = *policy;

  const trace::RegimeKey regime{workload.vm_type, *zone, trace::DayPeriod::kDay,
                                trace::WorkloadKind::kBatch};
  auto ground_truth = trace::ground_truth_distribution(regime).clone();
  // Decision model: a fit of a synthetic campaign from the same regime, as
  // the live service would have bootstrapped it (Sec. 3.1).
  const auto campaign = trace::generate_campaign({regime, 300, cfg.seed ^ 0x5eedULL});
  const auto model = core::PreemptionModel::fit(campaign.lifetimes());
  std::unique_ptr<sim::CheckpointPlanner> planner;
  if (cfg.checkpointing) {
    policy::CheckpointConfig ck;
    ck.checkpoint_cost_hours = workload.job.checkpoint_cost_hours;
    auto dp = std::make_shared<const policy::CheckpointDp>(model.distribution(),
                                                           workload.job.work_hours, ck);
    planner = std::make_unique<sim::DpCheckpointPlanner>(std::move(dp));
  }

  sim::BatchService service(cfg, std::move(ground_truth),
                            model.distribution().clone(), std::move(planner));
  sim::BagOfJobs bag;
  bag.name = workload.name;
  bag.spec = workload.job;
  bag.spec.checkpointable = cfg.checkpointing;
  bag.count = static_cast<std::size_t>(flags.get_int("jobs"));
  service.submit_bag(bag);
  const sim::ServiceReport report = service.run();

  Table table({"metric", "value"},
              workload.name + " x " + std::to_string(bag.count) + " on " +
                  std::to_string(cfg.cluster_size) + " VMs (" + policy_name + " policy)");
  table.add_row({"jobs completed", std::to_string(report.jobs_completed)});
  table.add_row({"makespan (h)", fmt_double(report.makespan_hours, 3)});
  table.add_row({"increase over ideal", fmt_double(report.increase_fraction * 100.0, 2) + "%"});
  table.add_row({"cost per job ($)", fmt_double(report.cost_per_job, 4)});
  table.add_row({"on-demand cost per job ($)", fmt_double(report.on_demand_cost_per_job, 4)});
  table.add_row({"cost reduction", fmt_double(report.cost_reduction_factor, 2) + "x"});
  table.add_row({"preemptions hitting jobs", std::to_string(report.preemptions)});
  table.add_row({"preemptions total", std::to_string(report.preemptions_total)});
  table.add_row({"VMs launched", std::to_string(report.vms_launched)});
  table.add_row({"wasted hours", fmt_double(report.wasted_hours, 3)});
  out << table;
  return 0;
}

}  // namespace preempt::cli
