// `preempt generate` — synthesize a measurement campaign and emit CSV.
#include <fstream>
#include <ostream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "common/error.hpp"
#include "trace/generator.hpp"

namespace preempt::cli {

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  FlagSet flags("preempt generate");
  flags.add_int("count", 200, "number of VM lifetimes to draw");
  flags.add_int("seed", 42, "RNG seed");
  add_regime_flags(flags);
  flags.add_string("out", "", "output file (default: stdout)");
  flags.add_bool("study", "generate the full factorial Sec. 3.1 study instead of one regime");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);

  trace::Dataset dataset;
  if (flags.get_bool("study")) {
    trace::StudyConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    dataset = trace::generate_study(cfg);
  } else {
    trace::CampaignConfig cfg;
    cfg.regime = regime_from_flags(flags);
    cfg.vm_count = static_cast<std::size_t>(flags.get_int("count"));
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    dataset = trace::generate_campaign(cfg);
  }

  const std::string csv = dataset.to_csv();
  if (const std::string path = flags.get_string("out"); !path.empty()) {
    std::ofstream file(path);
    if (!file) throw IoError("cannot open '" + path + "' for writing");
    file << csv;
    err << "wrote " << dataset.size() << " records to " << path << "\n";
  } else {
    out << csv;
  }
  return 0;
}

}  // namespace preempt::cli
