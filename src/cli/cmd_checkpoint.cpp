// `preempt checkpoint` — DP checkpoint schedule (Sec. 4.3) vs Young-Daly.
#include <ostream>

#include "cli/cli_util.hpp"
#include "cli/commands.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/model.hpp"
#include "policy/checkpoint.hpp"

namespace preempt::cli {

int cmd_checkpoint(const Args& args, std::ostream& out, std::ostream& err) {
  FlagSet flags("preempt checkpoint");
  add_data_flags(flags);
  flags.add_double("job", 5.0, "job length J (hours)");
  flags.add_double("age", 0.0, "VM age when the job starts (hours)");
  flags.add_double("delta-min", 1.0, "checkpoint write cost delta (minutes)");
  flags.add_double("mttf", 1.0, "MTTF assumed by the Young-Daly baseline (hours)");
  if (!args.empty() && (args[0] == "--help" || args[0] == "help")) {
    out << flags.usage();
    return 0;
  }
  flags.parse(args);

  const auto lifetimes = lifetimes_from_flags(flags, err);
  const auto model = core::PreemptionModel::fit(lifetimes);
  const double job = flags.get_double("job");
  const double age = flags.get_double("age");
  const double delta = flags.get_double("delta-min") / 60.0;

  policy::CheckpointConfig cfg;
  cfg.checkpoint_cost_hours = delta;
  const auto dp = model.make_checkpoint_dp(job, cfg);
  const auto schedule = dp.schedule(age);

  Table table({"segment", "work (min)", "checkpoint after?"},
              "DP schedule, " + fmt_double(job, 1) + " h job from VM age " + fmt_double(age, 1) +
                  " h, delta = " + fmt_double(delta * 60.0, 1) + " min");
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    table.add_row({std::to_string(i + 1), fmt_double(schedule[i] * 60.0, 1),
                   i + 1 < schedule.size() ? "yes" : "no (job ends)"});
  }
  out << table << "\n";
  out << "expected increase (DP):         " << fmt_double(dp.expected_increase_fraction(age) * 100.0, 2)
      << "%\n";

  const auto yd_plan =
      policy::young_daly_plan(job, flags.get_double("mttf"), delta);
  const double yd_makespan = policy::evaluate_plan(model.distribution(), yd_plan, age, cfg);
  out << "expected increase (Young-Daly): " << fmt_double((yd_makespan - job) / job * 100.0, 2)
      << "%  (interval " << fmt_double(policy::young_daly_interval(flags.get_double("mttf"), delta) * 60.0, 1)
      << " min)\n";
  return 0;
}

}  // namespace preempt::cli
