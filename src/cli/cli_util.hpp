// Shared helpers for the CLI subcommands (internal header).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "trace/dataset.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::cli {

/// Declare the regime-selection flags shared by several commands.
void add_regime_flags(FlagSet& flags);

/// Resolve the regime flags into a ground-truth key.
trace::RegimeKey regime_from_flags(const FlagSet& flags);

/// Load lifetimes from --input (tolerant public-schema importer), applying
/// optional --type/--zone filters; or, when --input is absent, synthesize
/// --count samples from the ground-truth regime.
std::vector<double> lifetimes_from_flags(const FlagSet& flags, std::ostream& err);

/// Declare --input/--count/--seed alongside the regime flags.
void add_data_flags(FlagSet& flags);

}  // namespace preempt::cli
