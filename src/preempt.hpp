// libpreempt — umbrella header.
//
// A C++20 library for modeling temporally constrained preemptions of
// transient cloud VMs, reproducing Kadupitiya, Jadhao & Sharma (HPDC '20).
// See README.md for a tour and DESIGN.md for the module map.
#pragma once

// Foundations
#include "common/csv.hpp"          // IWYU pragma: export
#include "common/error.hpp"        // IWYU pragma: export
#include "common/integrate.hpp"    // IWYU pragma: export
#include "common/json.hpp"         // IWYU pragma: export
#include "common/log.hpp"          // IWYU pragma: export
#include "common/random.hpp"       // IWYU pragma: export
#include "common/stats.hpp"        // IWYU pragma: export
#include "common/string_util.hpp"  // IWYU pragma: export
#include "common/table.hpp"        // IWYU pragma: export

// Lifetime distributions & reliability theory
#include "dist/bathtub.hpp"        // IWYU pragma: export
#include "dist/empirical.hpp"      // IWYU pragma: export
#include "dist/exponential.hpp"    // IWYU pragma: export
#include "dist/exponentiated_weibull.hpp"  // IWYU pragma: export
#include "dist/gamma.hpp"          // IWYU pragma: export
#include "dist/gompertz_makeham.hpp"  // IWYU pragma: export
#include "dist/lognormal.hpp"      // IWYU pragma: export
#include "dist/piecewise.hpp"      // IWYU pragma: export
#include "dist/reliability.hpp"    // IWYU pragma: export
#include "dist/truncated.hpp"      // IWYU pragma: export
#include "dist/uniform.hpp"        // IWYU pragma: export
#include "dist/weibull.hpp"        // IWYU pragma: export

// Model fitting
#include "fit/bootstrap.hpp"       // IWYU pragma: export
#include "fit/model_fitters.hpp"   // IWYU pragma: export
#include "fit/nelder_mead.hpp"     // IWYU pragma: export
#include "fit/segmented.hpp"       // IWYU pragma: export

// Survival analysis under right censoring
#include "survival/kaplan_meier.hpp"  // IWYU pragma: export
#include "survival/logrank.hpp"       // IWYU pragma: export
#include "survival/mle.hpp"           // IWYU pragma: export
#include "survival/nelson_aalen.hpp"  // IWYU pragma: export
#include "survival/observation.hpp"   // IWYU pragma: export

// Preemption traces (synthetic measurement campaigns)
#include "trace/dataset.hpp"       // IWYU pragma: export
#include "trace/generator.hpp"     // IWYU pragma: export
#include "trace/ground_truth.hpp"  // IWYU pragma: export
#include "trace/public_dataset.hpp"  // IWYU pragma: export
#include "trace/vm_catalog.hpp"    // IWYU pragma: export

// Model-driven policies
#include "policy/checkpoint.hpp"     // IWYU pragma: export
#include "policy/checkpoint_sim.hpp" // IWYU pragma: export
#include "policy/running_time.hpp"   // IWYU pragma: export
#include "policy/scheduling.hpp"     // IWYU pragma: export

// Batch computing service simulation
#include "sim/service.hpp"         // IWYU pragma: export
#include "sim/workloads.hpp"       // IWYU pragma: export

// Multi-market portfolio allocation
#include "portfolio/market.hpp"     // IWYU pragma: export
#include "portfolio/multi_market_service.hpp"  // IWYU pragma: export
#include "portfolio/optimizer.hpp"  // IWYU pragma: export

// Batch-service HTTP API
#include "api/api_client.hpp"       // IWYU pragma: export
#include "api/bag_jobs.hpp"         // IWYU pragma: export
#include "api/http.hpp"             // IWYU pragma: export
#include "api/http_client.hpp"      // IWYU pragma: export
#include "api/http_server.hpp"      // IWYU pragma: export
#include "api/router.hpp"           // IWYU pragma: export
#include "api/service_daemon.hpp"   // IWYU pragma: export

// Public facade
#include "core/analysis.hpp"       // IWYU pragma: export
#include "core/cusum.hpp"          // IWYU pragma: export
#include "core/drift.hpp"          // IWYU pragma: export
#include "core/model.hpp"          // IWYU pragma: export
#include "core/registry.hpp"       // IWYU pragma: export
