#include "policy/checkpoint_sim.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "mc/engine.hpp"

namespace preempt::policy {

namespace {

/// Draw a lifetime conditioned on survival to `age` (inverse transform on the
/// conditional CDF). Returns the *remaining* lifetime after `age`.
double sample_remaining_lifetime(const dist::Distribution& d, double age, Rng& rng) {
  if (age <= 0.0) return d.sample(rng);
  const double s_age = d.survival(age);
  if (s_age <= 0.0) return 0.0;
  const double u = rng.uniform();
  // P(T <= x | T > age) = u  =>  F(x) = F(age) + u * S(age).
  const double target = d.cdf(age) + u * s_age;
  const double t = d.quantile(clamp01(target));
  return std::max(0.0, t - age);
}

}  // namespace

SimulatedMakespan simulate_plan(const dist::Distribution& d, const CheckpointPlan& plan,
                                const SimulationOptions& options) {
  PREEMPT_REQUIRE(!plan.work_segments_hours.empty(), "plan has no segments");
  PREEMPT_REQUIRE(options.runs >= 1, "simulation needs at least one run");

  mc::EngineOptions engine;
  engine.replications = options.runs;
  engine.seed = options.seed;
  engine.max_threads = options.threads;

  enum Metric : std::size_t { kMakespan = 0, kPreemptions = 1 };
  const auto report = mc::run_replications(
      engine, {"makespan_hours", "preemptions"},
      [&](std::size_t /*rep*/, Rng& rng, mc::Recorder& rec) {
        double elapsed = 0.0;
        std::size_t preemptions = 0;
        std::size_t segment = 0;  // next segment to execute (checkpointed progress)
        // Remaining lifetime of the current VM.
        double vm_left = sample_remaining_lifetime(d, options.start_age_hours, rng);

        while (segment < plan.work_segments_hours.size()) {
          const bool has_checkpoint = segment + 1 < plan.work_segments_hours.size();
          const double need = plan.work_segments_hours[segment] +
                              (has_checkpoint ? plan.checkpoint_cost_hours : 0.0);
          if (vm_left >= need) {
            elapsed += need;
            vm_left -= need;
            ++segment;
          } else {
            // Preempted mid-segment: lose the partial segment, move to a new VM.
            elapsed += vm_left;
            elapsed += options.restart_overhead_hours;
            ++preemptions;
            if (preemptions >= options.max_preemptions_per_run) break;
            vm_left = d.sample(rng);
          }
        }
        rec.record(kMakespan, elapsed);
        rec.record(kPreemptions, static_cast<double>(preemptions));
      });

  const mc::MetricSummary& makespan = report.metrics[kMakespan];
  SimulatedMakespan out;
  out.runs = options.runs;
  out.mean_hours = makespan.mean;
  out.stddev_hours = makespan.stddev;
  out.std_error_hours = makespan.std_error;
  out.ci95_half_hours = makespan.ci95_half;
  out.max_hours = makespan.max;
  out.mean_preemptions = report.metrics[kPreemptions].mean;
  return out;
}

}  // namespace preempt::policy
