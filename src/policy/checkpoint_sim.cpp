#include "policy/checkpoint_sim.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/stats.hpp"

namespace preempt::policy {

namespace {

/// Draw a lifetime conditioned on survival to `age` (inverse transform on the
/// conditional CDF). Returns the *remaining* lifetime after `age`.
double sample_remaining_lifetime(const dist::Distribution& d, double age, Rng& rng) {
  if (age <= 0.0) return d.sample(rng);
  const double s_age = d.survival(age);
  if (s_age <= 0.0) return 0.0;
  const double u = rng.uniform();
  // P(T <= x | T > age) = u  =>  F(x) = F(age) + u * S(age).
  const double target = d.cdf(age) + u * s_age;
  const double t = d.quantile(clamp01(target));
  return std::max(0.0, t - age);
}

}  // namespace

SimulatedMakespan simulate_plan(const dist::Distribution& d, const CheckpointPlan& plan,
                                const SimulationOptions& options) {
  PREEMPT_REQUIRE(!plan.work_segments_hours.empty(), "plan has no segments");
  PREEMPT_REQUIRE(options.runs >= 1, "simulation needs at least one run");
  Rng rng(options.seed);

  std::vector<double> makespans;
  makespans.reserve(options.runs);
  double total_preemptions = 0.0;

  for (std::size_t run = 0; run < options.runs; ++run) {
    double elapsed = 0.0;
    std::size_t preemptions = 0;
    std::size_t segment = 0;  // next segment to execute (checkpointed progress)
    // Remaining lifetime of the current VM.
    double vm_left = sample_remaining_lifetime(d, options.start_age_hours, rng);

    while (segment < plan.work_segments_hours.size()) {
      const bool has_checkpoint = segment + 1 < plan.work_segments_hours.size();
      const double need =
          plan.work_segments_hours[segment] + (has_checkpoint ? plan.checkpoint_cost_hours : 0.0);
      if (vm_left >= need) {
        elapsed += need;
        vm_left -= need;
        ++segment;
      } else {
        // Preempted mid-segment: lose the partial segment, move to a new VM.
        elapsed += vm_left;
        elapsed += options.restart_overhead_hours;
        ++preemptions;
        if (preemptions >= options.max_preemptions_per_run) break;
        vm_left = d.sample(rng);
      }
    }
    makespans.push_back(elapsed);
    total_preemptions += static_cast<double>(preemptions);
  }

  SimulatedMakespan out;
  out.runs = options.runs;
  out.mean_hours = mean(makespans);
  out.stddev_hours = makespans.size() >= 2 ? stddev(makespans) : 0.0;
  out.mean_preemptions = total_preemptions / static_cast<double>(options.runs);
  out.max_hours = max_of(makespans);
  return out;
}

}  // namespace preempt::policy
