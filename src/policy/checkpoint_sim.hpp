// Monte-Carlo execution of checkpoint plans under sampled preemptions.
//
// This is the ground-truth semantics the analytic evaluator approximates:
// every preemption moves the job to a brand-new VM (fresh lifetime draw)
// and it resumes from the last completed checkpoint. Used to validate the
// DP/evaluator ordering and as an extra column in the Fig. 8 benches.
// Replications run on the batched Monte-Carlo engine (src/mc): chunked
// jump-derived RNG streams sharded over the thread pool, deterministic for
// a given seed regardless of thread count.
#pragma once

#include <cstdint>

#include "dist/distribution.hpp"
#include "policy/checkpoint.hpp"

namespace preempt::policy {

/// Aggregate outcome of repeated simulated executions.
struct SimulatedMakespan {
  double mean_hours = 0.0;
  double stddev_hours = 0.0;
  double std_error_hours = 0.0;   ///< standard error of mean_hours
  double ci95_half_hours = 0.0;   ///< 95% CI half-width on mean_hours
  double mean_preemptions = 0.0;
  double max_hours = 0.0;
  std::size_t runs = 0;
};

struct SimulationOptions {
  std::size_t runs = 2000;
  std::uint64_t seed = 7;
  double restart_overhead_hours = 0.0;  ///< added per preemption (provisioning)
  double start_age_hours = 0.0;         ///< age of the first VM when the job starts
  /// Safety valve: abort a run after this many preemptions (treats the run as
  /// its accumulated time; prevents pathological infinite loops).
  std::size_t max_preemptions_per_run = 10000;
  /// Replication-engine execution mode: 0 = shared pool, 1 = inline on the
  /// calling thread (other values behave like 0). Results are identical in
  /// every mode.
  std::size_t threads = 0;
};

/// Execute `plan` repeatedly against lifetimes drawn from `d`.
/// The first VM has the configured starting age (its remaining lifetime is
/// sampled conditionally); replacement VMs start at age 0.
SimulatedMakespan simulate_plan(const dist::Distribution& d, const CheckpointPlan& plan,
                                const SimulationOptions& options = {});

}  // namespace preempt::policy
