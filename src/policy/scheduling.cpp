#include "policy/scheduling.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "policy/running_time.hpp"

namespace preempt::policy {

double job_failure_probability(const dist::Distribution& d, double start_age_hours,
                               double job_hours) {
  PREEMPT_REQUIRE(start_age_hours >= 0.0, "start age must be non-negative");
  PREEMPT_REQUIRE(job_hours >= 0.0, "job length must be non-negative");
  if (job_hours == 0.0) return 0.0;
  const double completion = start_age_hours + job_hours;
  const double end = d.support_end();
  if (std::isfinite(end) && completion >= end) return 1.0;  // cannot outlive the deadline
  const double survive_start = d.survival(start_age_hours);
  if (survive_start <= 0.0) return 1.0;
  return clamp01((d.cdf(completion) - d.cdf(start_age_hours)) / survive_start);
}

double gang_failure_probability(const dist::Distribution& d,
                                std::span<const double> vm_ages_hours, double job_hours) {
  PREEMPT_REQUIRE(!vm_ages_hours.empty(), "gang needs at least one VM");
  double survive_all = 1.0;
  for (double age : vm_ages_hours) {
    survive_all *= 1.0 - job_failure_probability(d, age, job_hours);
  }
  return clamp01(1.0 - survive_all);
}

double SchedulingPolicy::average_failure_probability(double job_hours, double horizon_hours,
                                                     std::size_t grid) const {
  PREEMPT_REQUIRE(grid >= 2, "average needs at least 2 grid points");
  PREEMPT_REQUIRE(horizon_hours > 0.0, "horizon must be positive");
  double total = 0.0;
  for (std::size_t i = 0; i < grid; ++i) {
    // Midpoint grid over [0, horizon) — avoids double-counting s = horizon.
    const double s =
        horizon_hours * (static_cast<double>(i) + 0.5) / static_cast<double>(grid);
    total += policy_failure_probability(s, job_hours);
  }
  return total / static_cast<double>(grid);
}

ModelDrivenScheduler::ModelDrivenScheduler(dist::DistributionPtr decision_model,
                                           dist::DistributionPtr truth_model, ReuseRule rule)
    : decision_model_(std::move(decision_model)),
      truth_model_(std::move(truth_model)),
      rule_(rule) {
  PREEMPT_REQUIRE(decision_model_ != nullptr, "decision model must not be null");
  PREEMPT_REQUIRE(truth_model_ != nullptr, "truth model must not be null");
}

ModelDrivenScheduler::ModelDrivenScheduler(dist::DistributionPtr model, ReuseRule rule)
    : decision_model_(std::move(model)), rule_(rule) {
  // Not delegated: `f(model->clone(), std::move(model))` would have
  // unspecified evaluation order and could clone a moved-from pointer.
  PREEMPT_REQUIRE(decision_model_ != nullptr, "decision model must not be null");
  truth_model_ = decision_model_->clone();
}

ReuseDecision ModelDrivenScheduler::decide(double vm_age_hours, double job_hours) const {
  PREEMPT_REQUIRE(vm_age_hours >= 0.0, "VM age must be non-negative");
  PREEMPT_REQUIRE(job_hours > 0.0, "job length must be positive");
  ReuseDecision decision;
  if (rule_ == ReuseRule::kPaperEq8) {
    decision.expected_existing =
        expected_makespan_from_age(*decision_model_, vm_age_hours, job_hours);
    decision.expected_fresh = expected_makespan_from_age(*decision_model_, 0.0, job_hours);
    decision.reuse = decision.expected_existing <= decision.expected_fresh;
  } else {
    decision.expected_existing =
        expected_makespan_from_age_conditional(*decision_model_, vm_age_hours, job_hours);
    decision.expected_fresh =
        expected_makespan_from_age_conditional(*decision_model_, 0.0, job_hours);
    // A job that cannot complete before the deadline never reuses.
    const double end = decision_model_->support_end();
    const bool impossible = std::isfinite(end) && vm_age_hours + job_hours >= end;
    decision.reuse = !impossible && decision.expected_existing <= decision.expected_fresh;
  }
  decision.failure_probability =
      job_failure_probability(*truth_model_, decision.reuse ? vm_age_hours : 0.0, job_hours);
  return decision;
}

double ModelDrivenScheduler::transition_job_length(double vm_age_hours) const {
  // T* is the job length where E[T_s] - E[T_0] changes sign. Scan then refine.
  const double horizon = decision_model_->support_end();
  const double hi = std::isfinite(horizon) ? horizon : 24.0;
  constexpr int kScan = 192;
  double prev_t = std::numeric_limits<double>::quiet_NaN();
  bool prev_reuse = false;
  for (int i = 1; i <= kScan; ++i) {
    const double job = hi * static_cast<double>(i) / kScan;
    const bool reuse = decide(vm_age_hours, job).reuse;
    if (i > 1 && reuse != prev_reuse) {
      // Binary refine between prev_t and job.
      double lo = prev_t, up = job;
      for (int iter = 0; iter < 48; ++iter) {
        const double mid = 0.5 * (lo + up);
        if (decide(vm_age_hours, mid).reuse == prev_reuse) {
          lo = mid;
        } else {
          up = mid;
        }
      }
      return 0.5 * (lo + up);
    }
    prev_t = job;
    prev_reuse = reuse;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

MemorylessScheduler::MemorylessScheduler(dist::DistributionPtr truth_model)
    : truth_model_(std::move(truth_model)) {
  PREEMPT_REQUIRE(truth_model_ != nullptr, "truth model must not be null");
}

ReuseDecision MemorylessScheduler::decide(double vm_age_hours, double job_hours) const {
  PREEMPT_REQUIRE(vm_age_hours >= 0.0, "VM age must be non-negative");
  PREEMPT_REQUIRE(job_hours > 0.0, "job length must be positive");
  ReuseDecision decision;
  decision.reuse = true;
  decision.expected_existing = expected_makespan_from_age(*truth_model_, vm_age_hours, job_hours);
  decision.expected_fresh = expected_makespan_from_age(*truth_model_, 0.0, job_hours);
  decision.failure_probability = job_failure_probability(*truth_model_, vm_age_hours, job_hours);
  return decision;
}

AlwaysFreshScheduler::AlwaysFreshScheduler(dist::DistributionPtr truth_model)
    : truth_model_(std::move(truth_model)) {
  PREEMPT_REQUIRE(truth_model_ != nullptr, "truth model must not be null");
}

ReuseDecision AlwaysFreshScheduler::decide(double vm_age_hours, double job_hours) const {
  PREEMPT_REQUIRE(vm_age_hours >= 0.0, "VM age must be non-negative");
  PREEMPT_REQUIRE(job_hours > 0.0, "job length must be positive");
  ReuseDecision decision;
  decision.reuse = false;
  decision.expected_existing = expected_makespan_from_age(*truth_model_, vm_age_hours, job_hours);
  decision.expected_fresh = expected_makespan_from_age(*truth_model_, 0.0, job_hours);
  decision.failure_probability = job_failure_probability(*truth_model_, 0.0, job_hours);
  return decision;
}

}  // namespace preempt::policy
