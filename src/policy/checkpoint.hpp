// Checkpointing policies for constrained preemptions (paper Sec. 4.3).
//
// Two schedulers are provided:
//   * YoungDaly — the classical periodic interval tau = sqrt(2 * delta * MTTF)
//     assumed by memoryless transient-computing systems; and
//   * CheckpointDp — the paper's dynamic program (Eqs. 9-13) that adapts the
//     checkpoint rate to the time-varying bathtub failure rate, yielding
//     non-uniform intervals (e.g. ~(15, 28, 38, 59, 128) min for a 5 h job
//     started on a fresh VM with delta = 1 min).
//
// Semantics and deliberate cleanups of the paper's equations (see DESIGN.md):
//   * failure probability of a segment is conditioned on survival to its
//     start: Pfail = (F(t+d) - F(t)) / (1 - F(t))   [Eq. 10 prints F(t+i+d) -
//     F(i+d), a typo];
//   * lost work on failure defaults to the conditional expectation
//     E[x - t | fail in (t, t+d]] (LostWorkForm::kConditional); the paper's
//     literal  ∫ x f(x) dx  form (Eq. 13) is selectable as kPaper;
//   * after a failure, RestartModel::kContinueAge resumes the DP at age
//     t + d (the paper's Eq. 12 recursion), while kFreshVm resumes on a new
//     VM at age 0 (the behaviour described in the Sec. 4.3 prose). Both are
//     solved exactly; fresh restarts couple states through V(J, 0) and are
//     handled with a per-layer fixed point. Either way, once a VM reaches the
//     distribution's support end it is dead and the job restarts fresh.
//
// Work/time are discretised on a grid of `step_hours` (default 1 minute);
// the checkpoint cost delta is rounded up to whole steps.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"

namespace preempt::policy {

/// What happens to the DP state after a mid-segment preemption.
enum class RestartModel {
  kContinueAge,  ///< Eq. 12: job re-queues at VM age t + d (same timeline)
  kFreshVm,      ///< Sec. 4.3 prose: job resumes on a brand-new VM (age 0)
};

/// How the expected lost work of a failed segment is computed.
enum class LostWorkForm {
  kConditional,  ///< E[x - t | failure in (t, t+d]] (well-posed form)
  kPaper,        ///< Eq. 13 literal: ∫_t^{t+d} x f(x) dx
};

struct CheckpointConfig {
  double step_hours = 1.0 / 60.0;             ///< DP grid resolution
  double checkpoint_cost_hours = 1.0 / 60.0;  ///< delta
  double restart_overhead_hours = 0.0;        ///< VM re-provisioning cost R
  RestartModel restart = RestartModel::kContinueAge;
  LostWorkForm lost_work = LostWorkForm::kConditional;
  double fixed_point_tol = 1e-7;   ///< convergence of the V(J, 0) coupling
  int max_fixed_point_iters = 100;
};

/// A concrete checkpoint plan: work segments executed in order, with a
/// checkpoint (cost `checkpoint_cost_hours`) after every segment except the
/// last. Segments sum to the job length.
struct CheckpointPlan {
  std::vector<double> work_segments_hours;
  double checkpoint_cost_hours = 1.0 / 60.0;

  double job_hours() const;
  std::size_t checkpoint_count() const {
    return work_segments_hours.empty() ? 0 : work_segments_hours.size() - 1;
  }
};

/// The classical Young-Daly interval sqrt(2 * delta * mttf), in hours.
double young_daly_interval(double mttf_hours, double delta_hours);

/// Periodic plan with the Young-Daly interval (last segment truncated).
CheckpointPlan young_daly_plan(double job_hours, double mttf_hours, double delta_hours);

/// A plan with no checkpoints at all (restart-from-scratch baseline).
CheckpointPlan no_checkpoint_plan(double job_hours, double delta_hours);

/// The paper's DP checkpoint scheduler over a preemption distribution with a
/// finite support end (bathtub / uniform / piecewise models).
class CheckpointDp {
 public:
  /// Builds the full value function for jobs up to `job_hours` of work
  /// starting at any age on the grid. Cost is O(J * T * C) with C ~ 50
  /// candidate intervals per state; ~1 s for a 9 h job at 1 min resolution.
  CheckpointDp(const dist::Distribution& d, double job_hours, CheckpointConfig config = {});

  const CheckpointConfig& config() const noexcept { return config_; }
  double job_hours() const noexcept { return static_cast<double>(job_steps_) * config_.step_hours; }

  /// Expected makespan (hours) of the whole job starting at VM age s.
  double expected_makespan(double start_age_hours) const;

  /// Expected fractional increase over the failure-free running time.
  double expected_increase_fraction(double start_age_hours) const;

  /// The success-path checkpoint schedule for a job starting at age s:
  /// work intervals between checkpoints, in hours (sums to job_hours()).
  std::vector<double> schedule(double start_age_hours) const;

  /// Schedule for a *partial* job of `work_hours` (<= job_hours()) starting
  /// at age s — used when re-planning the remainder after a failure.
  std::vector<double> schedule_partial(double work_hours, double start_age_hours) const;

  /// Expected makespan for a *partial* job of `work_hours` (<= job_hours())
  /// starting at age s.
  double expected_makespan_partial(double work_hours, double start_age_hours) const;

 private:
  std::size_t age_index(double age_hours) const;
  std::size_t work_index(double work_hours) const;
  double& value(std::size_t j, std::size_t t) { return value_[j * (age_steps_ + 1) + t]; }
  double value(std::size_t j, std::size_t t) const { return value_[j * (age_steps_ + 1) + t]; }
  std::uint32_t& choice(std::size_t j, std::size_t t) {
    return choice_[j * (age_steps_ + 1) + t];
  }
  std::uint32_t choice(std::size_t j, std::size_t t) const {
    return choice_[j * (age_steps_ + 1) + t];
  }
  /// Cost of choosing the next checkpoint after `i` steps from state (j, t),
  /// given the current guess for fresh-restart values.
  double segment_cost(std::size_t j, std::size_t t, std::size_t i,
                      const std::vector<double>& fresh_value) const;

  CheckpointConfig config_;
  std::size_t job_steps_ = 0;   ///< work steps J
  std::size_t age_steps_ = 0;   ///< age grid size (support_end / step)
  std::size_t delta_steps_ = 0; ///< checkpoint cost in steps
  std::vector<double> cdf_grid_;     ///< F at grid ages (includes deadline atom at the end)
  std::vector<double> moment_grid_;  ///< E[X * 1{X <= t_k}] at grid ages (atom included)
  std::vector<double> value_;        ///< V(j, t): expected remaining makespan
  std::vector<std::uint32_t> choice_;  ///< argmin segment length (steps)
};

/// Analytic expected makespan of a FIXED plan under the same semantics as the
/// DP (same RestartModel / LostWorkForm); used for Young-Daly comparisons and
/// for optimality tests against brute force.
double evaluate_plan(const dist::Distribution& d, const CheckpointPlan& plan,
                     double start_age_hours, CheckpointConfig config = {});

}  // namespace preempt::policy
