#include "policy/checkpoint.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt::policy {

namespace {

/// Candidate next-checkpoint lengths (in steps) for a layer with j steps of
/// work remaining: every value up to 16, then a ~12% geometric ladder, and
/// always j itself (run to completion). Keeps the DP O(50) per state with
/// negligible optimality loss (the cost curve is flat near its minimum).
std::vector<std::uint32_t> candidate_intervals(std::size_t j) {
  std::vector<std::uint32_t> out;
  const std::size_t dense = std::min<std::size_t>(j, 16);
  for (std::size_t i = 1; i <= dense; ++i) out.push_back(static_cast<std::uint32_t>(i));
  std::size_t i = dense;
  while (i < j) {
    i = std::max(i + 1, static_cast<std::size_t>(std::ceil(static_cast<double>(i) * 1.12)));
    out.push_back(static_cast<std::uint32_t>(std::min(i, j)));
  }
  if (out.empty() || out.back() != j) out.push_back(static_cast<std::uint32_t>(j));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void validate_config(const CheckpointConfig& c) {
  PREEMPT_REQUIRE(c.step_hours > 0.0, "step_hours must be positive");
  PREEMPT_REQUIRE(c.checkpoint_cost_hours >= 0.0, "checkpoint cost must be >= 0");
  PREEMPT_REQUIRE(c.restart_overhead_hours >= 0.0, "restart overhead must be >= 0");
  PREEMPT_REQUIRE(c.fixed_point_tol > 0.0, "fixed point tolerance must be positive");
  PREEMPT_REQUIRE(c.max_fixed_point_iters >= 1, "need at least one fixed point iteration");
}

std::size_t to_steps_round(double hours, double step) {
  return static_cast<std::size_t>(std::llround(hours / step));
}

std::size_t to_steps_ceil(double hours, double step) {
  return static_cast<std::size_t>(std::ceil(hours / step - 1e-9));
}

}  // namespace

double CheckpointPlan::job_hours() const {
  double total = 0.0;
  for (double w : work_segments_hours) total += w;
  return total;
}

double young_daly_interval(double mttf_hours, double delta_hours) {
  PREEMPT_REQUIRE(mttf_hours > 0.0, "MTTF must be positive");
  PREEMPT_REQUIRE(delta_hours > 0.0, "checkpoint cost must be positive");
  return std::sqrt(2.0 * delta_hours * mttf_hours);
}

CheckpointPlan young_daly_plan(double job_hours, double mttf_hours, double delta_hours) {
  PREEMPT_REQUIRE(job_hours > 0.0, "job length must be positive");
  const double tau = young_daly_interval(mttf_hours, delta_hours);
  CheckpointPlan plan;
  plan.checkpoint_cost_hours = delta_hours;
  double remaining = job_hours;
  while (remaining > tau + 1e-12) {
    plan.work_segments_hours.push_back(tau);
    remaining -= tau;
  }
  if (remaining > 1e-12) plan.work_segments_hours.push_back(remaining);
  PREEMPT_CHECK(!plan.work_segments_hours.empty(), "Young-Daly plan came out empty");
  return plan;
}

CheckpointPlan no_checkpoint_plan(double job_hours, double delta_hours) {
  PREEMPT_REQUIRE(job_hours > 0.0, "job length must be positive");
  CheckpointPlan plan;
  plan.checkpoint_cost_hours = delta_hours;
  plan.work_segments_hours = {job_hours};
  return plan;
}

// ---------------------------------------------------------------------------
// Shared DP kernel machinery
// ---------------------------------------------------------------------------
namespace {

/// Precomputed grid view of the distribution: F and the first partial moment
/// M(t) = E[X 1{X <= t}] at grid ages, with any deadline atom folded into the
/// final grid point.
struct DistGrid {
  double step = 0.0;
  std::size_t age_steps = 0;  ///< grid has age_steps + 1 points, last = support end
  std::vector<double> cdf;
  std::vector<double> moment;

  DistGrid(const dist::Distribution& d, double step_hours) {
    const double end = d.support_end();
    PREEMPT_REQUIRE(std::isfinite(end),
                    "checkpoint DP requires a finite-support (constrained) distribution");
    step = step_hours;
    age_steps = to_steps_ceil(end, step_hours);
    PREEMPT_REQUIRE(age_steps >= 2, "support too short for the chosen step");
    cdf.resize(age_steps + 1);
    moment.resize(age_steps + 1);
    for (std::size_t k = 0; k <= age_steps; ++k) {
      const double t = std::min(static_cast<double>(k) * step, end);
      cdf[k] = d.cdf(t);
      moment[k] = d.partial_expectation(0.0, t);
    }
    // Fold a deadline atom (mass not covered by the continuous density) into
    // the last grid point so interval probabilities/moments stay consistent.
    cdf[age_steps] = 1.0;
    const double continuous_mass = d.cdf(end * (1.0 - 1e-12));
    const double atom = std::max(0.0, 1.0 - continuous_mass);
    moment[age_steps] += atom * end;
  }

  double survival(std::size_t k) const { return 1.0 - cdf[k]; }
};

/// One segment's branch quantities from state age-index t choosing total
/// duration d_steps (work + checkpoint), under a survival-to-t condition.
struct SegmentOutcome {
  double p_succ = 0.0;
  double p_fail = 1.0;
  double lost_hours = 0.0;  ///< expected elapsed time when the segment fails
  std::size_t end_index = 0;
};

SegmentOutcome segment_outcome(const DistGrid& grid, std::size_t t, std::size_t d_steps,
                               LostWorkForm lost_form) {
  SegmentOutcome out;
  out.end_index = std::min(t + d_steps, grid.age_steps);
  const double surv_t = grid.survival(t);
  if (surv_t <= 0.0) {
    out.p_succ = 0.0;
    out.p_fail = 1.0;
    out.lost_hours = 0.0;
    return out;
  }
  const bool past_end = (t + d_steps) >= grid.age_steps;
  const double q = grid.cdf[out.end_index] - grid.cdf[t];
  out.p_fail = past_end ? 1.0 : clamp01(q / surv_t);
  out.p_succ = 1.0 - out.p_fail;
  const double t_hours = static_cast<double>(t) * grid.step;
  if (q > 0.0) {
    const double mass_weighted_time = grid.moment[out.end_index] - grid.moment[t];
    if (lost_form == LostWorkForm::kConditional) {
      out.lost_hours = std::max(0.0, mass_weighted_time / q - t_hours);
    } else {
      out.lost_hours = std::max(0.0, mass_weighted_time);
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckpointDp
// ---------------------------------------------------------------------------

CheckpointDp::CheckpointDp(const dist::Distribution& d, double job_hours, CheckpointConfig config)
    : config_(config) {
  validate_config(config_);
  PREEMPT_REQUIRE(job_hours > 0.0, "job length must be positive");
  DistGrid grid(d, config_.step_hours);
  age_steps_ = grid.age_steps;
  job_steps_ = to_steps_round(job_hours, config_.step_hours);
  PREEMPT_REQUIRE(job_steps_ >= 1, "job shorter than one DP step");
  delta_steps_ = to_steps_ceil(config_.checkpoint_cost_hours, config_.step_hours);
  cdf_grid_ = grid.cdf;
  moment_grid_ = grid.moment;

  const std::size_t stride = age_steps_ + 1;
  value_.assign((job_steps_ + 1) * stride, 0.0);
  choice_.assign((job_steps_ + 1) * stride, 0);

  const double h = config_.step_hours;
  // fresh_value[j] = V(j, 0), the fixed-point coupling for fresh restarts.
  std::vector<double> fresh_value(job_steps_ + 1, 0.0);

  for (std::size_t j = 1; j <= job_steps_; ++j) {
    const std::vector<std::uint32_t> candidates = candidate_intervals(j);
    // Warm-start the layer fixed point from the previous layer.
    fresh_value[j] = fresh_value[j - 1] + h;
    for (int iter = 0; iter < config_.max_fixed_point_iters; ++iter) {
      for (std::size_t tt = stride; tt-- > 0;) {
        const std::size_t t = tt;
        if (grid.survival(t) <= 0.0) {
          // VM is certainly dead at this age: restart on a fresh VM.
          value(j, t) = config_.restart_overhead_hours + fresh_value[j];
          choice(j, t) = 0;
          continue;
        }
        double best = std::numeric_limits<double>::infinity();
        std::uint32_t best_i = candidates.front();
        for (std::uint32_t i : candidates) {
          const double cost = segment_cost(j, t, i, fresh_value);
          if (cost < best) {
            best = cost;
            best_i = i;
          }
        }
        value(j, t) = best;
        choice(j, t) = best_i;
      }
      const double updated = value(j, 0);
      const double err = std::abs(updated - fresh_value[j]);
      fresh_value[j] = updated;
      if (err < config_.fixed_point_tol * std::max(1.0, updated)) break;
    }
  }
}

double CheckpointDp::segment_cost(std::size_t j, std::size_t t, std::size_t i,
                                  const std::vector<double>& fresh_value) const {
  const bool has_checkpoint = i < j;
  const std::size_t d_steps = i + (has_checkpoint ? delta_steps_ : 0);
  const double h = config_.step_hours;
  const double d_hours = static_cast<double>(d_steps) * h;

  // Outcome math inlined against the member arrays (this is the DP hot loop).
  const std::size_t end_index = std::min(t + d_steps, age_steps_);
  const double surv_t = 1.0 - cdf_grid_[t];
  double p_fail = 1.0, p_succ = 0.0, lost_hours = 0.0;
  if (surv_t > 0.0) {
    const bool past_end = (t + d_steps) >= age_steps_;
    const double q = cdf_grid_[end_index] - cdf_grid_[t];
    p_fail = past_end ? 1.0 : clamp01(q / surv_t);
    p_succ = 1.0 - p_fail;
    if (q > 0.0) {
      const double mass_weighted_time = moment_grid_[end_index] - moment_grid_[t];
      const double t_hours = static_cast<double>(t) * h;
      lost_hours = (config_.lost_work == LostWorkForm::kConditional)
                       ? std::max(0.0, mass_weighted_time / q - t_hours)
                       : std::max(0.0, mass_weighted_time);
    }
  }

  double cost = 0.0;
  if (p_succ > 0.0) {
    const double cont = (j == i) ? 0.0 : value(j - i, end_index);
    cost += p_succ * (d_hours + cont);
  }
  if (p_fail > 0.0) {
    double fail_cont;
    if (config_.restart == RestartModel::kFreshVm || end_index >= age_steps_) {
      fail_cont = config_.restart_overhead_hours + fresh_value[j];
    } else {
      fail_cont = value(j, end_index);
    }
    cost += p_fail * (lost_hours + fail_cont);
  }
  return cost;
}

std::size_t CheckpointDp::age_index(double age_hours) const {
  PREEMPT_REQUIRE(age_hours >= 0.0, "age must be non-negative");
  const auto idx = to_steps_round(age_hours, config_.step_hours);
  return std::min(idx, age_steps_);
}

std::size_t CheckpointDp::work_index(double work_hours) const {
  const auto idx = to_steps_round(work_hours, config_.step_hours);
  PREEMPT_REQUIRE(idx >= 1 && idx <= job_steps_, "work amount outside the DP table");
  return idx;
}

double CheckpointDp::expected_makespan(double start_age_hours) const {
  return value(job_steps_, age_index(start_age_hours));
}

double CheckpointDp::expected_increase_fraction(double start_age_hours) const {
  const double ideal = static_cast<double>(job_steps_) * config_.step_hours;
  return (expected_makespan(start_age_hours) - ideal) / ideal;
}

double CheckpointDp::expected_makespan_partial(double work_hours, double start_age_hours) const {
  return value(work_index(work_hours), age_index(start_age_hours));
}

std::vector<double> CheckpointDp::schedule(double start_age_hours) const {
  return schedule_partial(job_hours(), start_age_hours);
}

std::vector<double> CheckpointDp::schedule_partial(double work_hours,
                                                   double start_age_hours) const {
  std::vector<double> intervals;
  std::size_t j = work_index(work_hours);
  std::size_t t = age_index(start_age_hours);
  while (j > 0) {
    std::uint32_t i = choice(j, t);
    if (i == 0) {
      // Dead-VM state: the success path restarts on a fresh VM.
      t = 0;
      continue;
    }
    intervals.push_back(static_cast<double>(i) * config_.step_hours);
    const bool has_checkpoint = i < j;
    const std::size_t d_steps = i + (has_checkpoint ? delta_steps_ : 0);
    t = std::min(t + d_steps, age_steps_);
    j -= i;
  }
  return intervals;
}

// ---------------------------------------------------------------------------
// Fixed-plan analytic evaluator
// ---------------------------------------------------------------------------

double evaluate_plan(const dist::Distribution& d, const CheckpointPlan& plan,
                     double start_age_hours, CheckpointConfig config) {
  validate_config(config);
  PREEMPT_REQUIRE(!plan.work_segments_hours.empty(), "plan has no segments");
  PREEMPT_REQUIRE(start_age_hours >= 0.0, "start age must be non-negative");

  const DistGrid grid(d, config.step_hours);
  const std::size_t stride = grid.age_steps + 1;
  const std::size_t delta_steps = to_steps_ceil(plan.checkpoint_cost_hours, config.step_hours);
  const double h = config.step_hours;

  // Segment lengths in steps (each at least one step).
  std::vector<std::size_t> seg_steps;
  seg_steps.reserve(plan.work_segments_hours.size());
  for (double w : plan.work_segments_hours) {
    PREEMPT_REQUIRE(w > 0.0, "plan segments must be positive");
    seg_steps.push_back(std::max<std::size_t>(1, to_steps_round(w, h)));
  }

  const std::size_t m = seg_steps.size();
  // W[k][t] = expected remaining makespan with segments k..m-1 left, age t.
  std::vector<double> next(stride, 0.0);  // W[k+1][.]
  std::vector<double> cur(stride, 0.0);
  // Iterate k downward; each layer needs a fixed point on W[k][0].
  for (std::size_t kk = m; kk-- > 0;) {
    const bool has_checkpoint = (kk + 1) < m;
    const std::size_t d_steps = seg_steps[kk] + (has_checkpoint ? delta_steps : 0);
    const double d_hours = static_cast<double>(d_steps) * h;
    double fresh_guess = next[0] + d_hours;
    for (int iter = 0; iter < config.max_fixed_point_iters; ++iter) {
      for (std::size_t tt = stride; tt-- > 0;) {
        const std::size_t t = tt;
        if (grid.survival(t) <= 0.0) {
          cur[t] = config.restart_overhead_hours + fresh_guess;
          continue;
        }
        const SegmentOutcome seg = segment_outcome(grid, t, d_steps, config.lost_work);
        double cost = 0.0;
        if (seg.p_succ > 0.0) cost += seg.p_succ * (d_hours + next[seg.end_index]);
        if (seg.p_fail > 0.0) {
          double fail_cont;
          if (config.restart == RestartModel::kFreshVm || seg.end_index >= grid.age_steps) {
            fail_cont = config.restart_overhead_hours + fresh_guess;
          } else {
            fail_cont = cur[seg.end_index];
          }
          cost += seg.p_fail * (seg.lost_hours + fail_cont);
        }
        cur[t] = cost;
      }
      const double err = std::abs(cur[0] - fresh_guess);
      fresh_guess = cur[0];
      if (err < config.fixed_point_tol * std::max(1.0, fresh_guess)) break;
    }
    next = cur;
  }
  const std::size_t start_idx =
      std::min(to_steps_round(start_age_hours, h), grid.age_steps);
  return next[start_idx];
}

}  // namespace preempt::policy
