// Job scheduling / VM reuse policy (paper Sec. 4.2).
//
// When a job of length T wants to start on a VM of age s, the application can
// (a) reuse the running VM or (b) relinquish it and launch a fresh one.
// The model-driven rule is: reuse iff E[T_s] <= E[T_0] (Eq. 8), i.e. iff the
// expected makespan on the aged VM does not exceed that on a fresh VM.
// The memoryless baseline (SpotOn-style) always reuses the running VM.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "dist/distribution.hpp"

namespace preempt::policy {

/// P(job of length T fails | it starts on a VM of age s), i.e. the
/// probability the VM is preempted before s + T given it survived to s.
/// Deadline atoms are included: a job whose completion time lands past the
/// distribution's support end fails with probability 1.
double job_failure_probability(const dist::Distribution& d, double start_age_hours,
                               double job_hours);

/// Distributed (gang) extension — the failure semantics the paper defers to
/// future work but its batch service already faces: a job spanning several
/// VMs fails if ANY of them is preempted before completion. Assuming
/// independent preemptions,
///   P(fail) = 1 - prod_i P(VM_i survives T | alive at age s_i).
/// `vm_ages_hours` holds the current age of each gang member.
double gang_failure_probability(const dist::Distribution& d,
                                std::span<const double> vm_ages_hours, double job_hours);

/// Outcome of one reuse-or-replace decision.
struct ReuseDecision {
  bool reuse = true;                 ///< run on the existing VM?
  double expected_existing = 0.0;    ///< E[T_s] (Eq. 8)
  double expected_fresh = 0.0;       ///< E[T_0]
  double failure_probability = 0.0;  ///< of the chosen option
};

/// Scheduling policy interface: decides where a job of a given length starts.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual std::string name() const = 0;
  /// Decide for a job of `job_hours` arriving at a VM of age `vm_age_hours`.
  virtual ReuseDecision decide(double vm_age_hours, double job_hours) const = 0;

  /// Failure probability of the option this policy picks.
  double policy_failure_probability(double vm_age_hours, double job_hours) const {
    return decide(vm_age_hours, job_hours).failure_probability;
  }

  /// Average failure probability over job start ages uniform on [0, horizon)
  /// evaluated on `grid` points (the Fig. 6 aggregation).
  double average_failure_probability(double job_hours, double horizon_hours = 24.0,
                                     std::size_t grid = 97) const;
};

/// Which expected-makespan formula the reuse rule compares (see DESIGN.md).
enum class ReuseRule {
  kPaperEq8,          ///< literal Eq. 8: E[T_s] = T + ∫_s^{s+T} t f(t) dt
  kConditionalWaste,  ///< corrected: waste measured from the job start,
                      ///< conditioned on survival to s (service default)
};

/// The paper's model-driven policy, parameterised by a preemption model.
class ModelDrivenScheduler final : public SchedulingPolicy {
 public:
  /// `decision_model` drives the reuse rule; `truth_model` is used to report
  /// failure probabilities. Passing different models reproduces the Fig. 7
  /// sensitivity experiment (decide with a misfit model, evaluate under the
  /// real one). Pass the same model for normal operation.
  ModelDrivenScheduler(dist::DistributionPtr decision_model, dist::DistributionPtr truth_model,
                       ReuseRule rule = ReuseRule::kPaperEq8);
  explicit ModelDrivenScheduler(dist::DistributionPtr model,
                                ReuseRule rule = ReuseRule::kPaperEq8);

  std::string name() const override { return "model-driven"; }
  ReuseDecision decide(double vm_age_hours, double job_hours) const override;

  /// Largest job length for which the policy still reuses a VM of age s
  /// (the T* transition of Sec. 4.2); NaN if it always/never reuses on the
  /// scanned range (0, horizon].
  double transition_job_length(double vm_age_hours) const;

 private:
  dist::DistributionPtr decision_model_;
  dist::DistributionPtr truth_model_;
  ReuseRule rule_;
};

/// Memoryless baseline: keeps using the current VM regardless of its age
/// (what systems built for spot-market preemptions do).
class MemorylessScheduler final : public SchedulingPolicy {
 public:
  explicit MemorylessScheduler(dist::DistributionPtr truth_model);

  std::string name() const override { return "memoryless"; }
  ReuseDecision decide(double vm_age_hours, double job_hours) const override;

 private:
  dist::DistributionPtr truth_model_;
};

/// Ablation baseline: always relinquish and launch a fresh VM.
class AlwaysFreshScheduler final : public SchedulingPolicy {
 public:
  explicit AlwaysFreshScheduler(dist::DistributionPtr truth_model);

  std::string name() const override { return "always-fresh"; }
  ReuseDecision decide(double vm_age_hours, double job_hours) const override;

 private:
  dist::DistributionPtr truth_model_;
};

}  // namespace preempt::policy
