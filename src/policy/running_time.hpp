// Impact of constrained preemptions on job running time (paper Sec. 4.1).
//
// All quantities follow Eqs. 4-8 with time in hours and `d` the lifetime
// (time-to-preemption) distribution of the VM the job runs on:
//   * expected wasted work given one preemption:
//       E[W1(T)] = (1/F(T)) ∫_0^T t f(t) dt                       (Eq. 5)
//   * expected makespan under the at-most-one-failure assumption:
//       E[T] = T + ∫_0^T t f(t) dt                                (Eq. 7)
//   * expected makespan for a job starting at VM age s:
//       E[T_s] = T + ∫_s^{s+T} t f(t) dt                          (Eq. 8)
// The integrals use the continuous density (paper's literal form); the
// deadline atom enters failure probabilities via cdf(), not these moments.
#pragma once

#include "dist/distribution.hpp"

namespace preempt::policy {

/// Eq. 5: expected wasted hours assuming the job hits exactly one preemption.
/// Returns 0 when the preemption probability F(T) is zero.
double expected_wasted_work_single(const dist::Distribution& d, double job_hours);

/// Eq. 7's second term: the expected increase in running time
/// F(T) * E[W1(T)] = ∫_0^T t f(t) dt.
double expected_increase(const dist::Distribution& d, double job_hours);

/// Eq. 7: total expected running time T + expected_increase.
double expected_makespan(const dist::Distribution& d, double job_hours);

/// Eq. 8: expected running time of a job of length T starting at VM age s.
double expected_makespan_from_age(const dist::Distribution& d, double start_age_hours,
                                  double job_hours);

/// Corrected variant of Eq. 8 (see DESIGN.md): waste is the time lost since
/// the *job* start rather than the VM launch, conditioned on the VM being
/// alive at age s:
///   E[T_s] = T + ∫_s^{s+T} (t - s) f(t) dt / (1 - F(s)).
/// The literal Eq. 8 weights failures by absolute VM age, which makes young
/// VMs look spuriously risky for short jobs; this form removes that artifact
/// while agreeing with Eq. 8 in the regimes the paper evaluates (Fig. 5/6).
double expected_makespan_from_age_conditional(const dist::Distribution& d,
                                              double start_age_hours, double job_hours);

/// Job length at which distribution `a` stops being cheaper than `b` in
/// expected increase (the Fig. 4b bathtub-vs-uniform crossover, ~5 h).
/// Scans [lo, hi] for a sign change and bisects; returns NaN if none found.
double crossover_job_length(const dist::Distribution& a, const dist::Distribution& b,
                            double lo = 0.25, double hi = 24.0);

/// The "higher order terms and multiple job failures" extension the paper
/// says "easily follows from the base case" (Sec. 4.1): expected makespan
/// when every preemption restarts the job from scratch on a fresh VM, for
/// unboundedly many retries. Renewal (first-step) analysis gives
///   E[M] = T + E[X 1{X <= T}] / (1 - F(T))
/// where the numerator includes any deadline atom inside [0, T].
/// `restart_overhead_hours` is charged per retry (VM re-provisioning).
/// Requires F(T) < 1 (a job longer than the max lifetime never finishes
/// without checkpointing) — throws InvalidArgument otherwise.
double expected_makespan_with_restarts(const dist::Distribution& d, double job_hours,
                                       double restart_overhead_hours = 0.0);

}  // namespace preempt::policy
