#include "policy/running_time.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/root_find.hpp"

namespace preempt::policy {

double expected_wasted_work_single(const dist::Distribution& d, double job_hours) {
  PREEMPT_REQUIRE(job_hours >= 0.0, "job length must be non-negative");
  if (job_hours == 0.0) return 0.0;
  const double prob = d.cdf(job_hours);
  if (prob <= 0.0) return 0.0;
  return d.partial_expectation(0.0, job_hours) / prob;
}

double expected_increase(const dist::Distribution& d, double job_hours) {
  PREEMPT_REQUIRE(job_hours >= 0.0, "job length must be non-negative");
  return d.partial_expectation(0.0, job_hours);
}

double expected_makespan(const dist::Distribution& d, double job_hours) {
  return job_hours + expected_increase(d, job_hours);
}

double expected_makespan_from_age(const dist::Distribution& d, double start_age_hours,
                                  double job_hours) {
  PREEMPT_REQUIRE(start_age_hours >= 0.0, "start age must be non-negative");
  PREEMPT_REQUIRE(job_hours >= 0.0, "job length must be non-negative");
  return job_hours + d.partial_expectation(start_age_hours, start_age_hours + job_hours);
}

double expected_makespan_from_age_conditional(const dist::Distribution& d,
                                              double start_age_hours, double job_hours) {
  PREEMPT_REQUIRE(start_age_hours >= 0.0, "start age must be non-negative");
  PREEMPT_REQUIRE(job_hours >= 0.0, "job length must be non-negative");
  const double s = start_age_hours;
  const double completion = s + job_hours;
  const double survive = d.survival(s);
  if (survive <= 0.0) {
    // The VM is certainly dead; treat the whole job as lost once.
    return 2.0 * job_hours;
  }
  // E[(t - s) 1{s < t <= s+T}] = PE(s, s+T) - s * (F(s+T) - F(s)), plus any
  // deadline atom inside the window contributing (end - s) * mass.
  double mass_time = d.partial_expectation(s, completion);
  double prob = d.cdf(completion) - d.cdf(s);
  const double end = d.support_end();
  if (std::isfinite(end) && completion >= end) {
    const double continuous_at_end = d.cdf(end * (1.0 - 1e-12));
    const double atom = std::max(0.0, 1.0 - continuous_at_end);
    mass_time += atom * end;  // cdf() already includes the atom in `prob`
  }
  const double waste = std::max(0.0, mass_time - s * prob) / survive;
  return job_hours + waste;
}

double expected_makespan_with_restarts(const dist::Distribution& d, double job_hours,
                                       double restart_overhead_hours) {
  PREEMPT_REQUIRE(job_hours > 0.0, "job length must be positive");
  PREEMPT_REQUIRE(restart_overhead_hours >= 0.0, "restart overhead must be >= 0");
  const double q = d.cdf(job_hours);  // includes any deadline atom before T
  const double p = 1.0 - q;
  PREEMPT_REQUIRE(p > 0.0,
                  "job cannot finish: preemption before completion is certain "
                  "(job longer than the maximum lifetime?)");
  // E[elapsed time of one failed attempt] * expected retries, by renewal:
  //   E[M] = p T + q (E[X | X <= T] + R + E[M]).
  double mass_time = d.partial_expectation(0.0, job_hours);
  const double end = d.support_end();
  if (std::isfinite(end) && job_hours >= end) {
    const double continuous_at_end = d.cdf(end * (1.0 - 1e-12));
    mass_time += std::max(0.0, 1.0 - continuous_at_end) * end;
  }
  return job_hours + (mass_time + q * restart_overhead_hours) / p;
}

double crossover_job_length(const dist::Distribution& a, const dist::Distribution& b, double lo,
                            double hi) {
  PREEMPT_REQUIRE(lo > 0.0 && lo < hi, "crossover scan needs 0 < lo < hi");
  auto diff = [&](double j) { return expected_increase(a, j) - expected_increase(b, j); };
  // Scan for a bracket, then refine with Brent.
  constexpr int kScanPoints = 96;
  double prev_t = lo;
  double prev_v = diff(lo);
  for (int i = 1; i <= kScanPoints; ++i) {
    const double t = lo + (hi - lo) * static_cast<double>(i) / kScanPoints;
    const double v = diff(t);
    if (prev_v == 0.0) return prev_t;
    if (prev_v * v < 0.0) return brent(diff, prev_t, t);
    prev_t = t;
    prev_v = v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace preempt::policy
