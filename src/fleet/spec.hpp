// Declarative fleet configuration: the `"fleet"` block of a `kind: fleet`
// ScenarioSpec.
//
// A FleetSpec is the full description of one fleet experiment minus the
// pieces the scenario layer owns (seed, replications, ground-truth
// preemption law): the machine classes, the task-class workload shapes, the
// placement policy, and the migration / preemption / rebalance knobs.
// Parsing is strict, like scenario JSON: unknown keys and out-of-range
// values are rejected with clean messages.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "fleet/machine.hpp"
#include "fleet/task.hpp"

namespace preempt::fleet {

struct FleetSpec {
  std::vector<MachineClass> machines;
  std::vector<TaskClass> tasks;

  /// Placement policy name (see make_placement_policy).
  std::string placement = "first-fit";

  /// How often the policy's rebalance hook runs (migrations + power-state
  /// housekeeping).
  double rebalance_interval_hours = 0.25;

  /// Live-migration transfer cost: hours per GB of task memory moved.
  double migration_hours_per_gb = 0.002;

  /// Inject machine preemptions drawn from the scenario's ground-truth
  /// lifetime law (the paper's transient-VM reclamations, applied to whole
  /// machines).
  bool preemptions = true;

  /// How long a preempted machine stays dark before the provider hands back
  /// a replacement.
  double relaunch_hours = 0.05;

  /// Arrivals stop and rebalancing freezes after this point; the run then
  /// drains to completion.
  double horizon_hours = 24.0;

  /// Lifetimes pre-drawn per machine through the law's batched
  /// sample_many (which is bit-identical to sequential sample() calls, so
  /// any batch size yields byte-identical reports). A perf knob, not part
  /// of the experiment definition — deliberately not serialized.
  std::size_t preemption_draw_batch = 8;

  std::size_t machine_count() const {
    std::size_t n = 0;
    for (const auto& mc : machines) n += mc.count;
    return n;
  }
};

/// Stable-key-order serialization (round-trips through fleet_spec_from_json).
JsonValue to_json(const FleetSpec& spec);

/// Strict parse. Throws InvalidArgument on unknown fields or bad values.
FleetSpec fleet_spec_from_json(const JsonValue& value);

/// Structural validation (also called by fleet_spec_from_json). Bounds the
/// fleet and the expected arrival volume so a queued REST job cannot be
/// asked to simulate an absurd configuration.
void validate(const FleetSpec& spec);

}  // namespace preempt::fleet
