// The fleet registry: machines instantiated from machine classes, with
// energy-consistent power-state transitions.
//
// Fleet generalizes sim::ClusterManager from "a bag of identical transient
// VMs" to "a datacenter of machine classes with sleep states": it owns every
// Machine, enforces the state machine (on <-> sleeping/waking, preempted <->
// relaunched), tracks core/memory capacity, and integrates each machine's
// power draw into an energy ledger on every transition. It knows nothing
// about events or policies — FleetSimulator drives it.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "fleet/machine.hpp"
#include "fleet/task.hpp"

namespace preempt::fleet {

/// Dense power-state occupancy index: machine id `i` is bit (i-1)%64 of
/// word (i-1)/64. Fleet maintains one per power state so placement policies
/// can walk only the machines in the states they care about instead of
/// scanning the whole fleet per placement.
using MachineBits = std::vector<std::uint64_t>;

/// Invoke fn(id) for each machine id whose bit is set, in ascending id
/// order. fn returns false to stop early (first-fit style walks).
template <typename Fn>
inline void for_each_machine(const MachineBits& bits, Fn&& fn) {
  for (std::size_t w = 0; w < bits.size(); ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(word));
      word &= word - 1;
      if (!fn(static_cast<std::uint64_t>(w * 64 + b + 1))) return;
    }
  }
}

/// Same walk over the union a | b (e.g. on | waking = placeable), without
/// materializing the merged set.
template <typename Fn>
inline void for_each_machine(const MachineBits& a, const MachineBits& b, Fn&& fn) {
  for (std::size_t w = 0; w < a.size(); ++w) {
    std::uint64_t word = a[w] | b[w];
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
      word &= word - 1;
      if (!fn(static_cast<std::uint64_t>(w * 64 + bit + 1))) return;
    }
  }
}

/// Contiguous machine-id range [begin, end) of one machine class (the
/// constructor assigns ids class by class, so walking classes in order is
/// walking ids in order).
struct ClassRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Walk a | b restricted to ids in `range` — jumps straight to the word
/// holding range.begin instead of stepping over every earlier set bit, so a
/// per-class walk costs O(class size / 64) even deep into a large fleet.
template <typename Fn>
inline void for_each_machine(const MachineBits& bits, ClassRange range, Fn&& fn);

template <typename Fn>
inline void for_each_machine(const MachineBits& a, const MachineBits& b,
                             ClassRange range, Fn&& fn) {
  if (range.begin == 0 || range.begin >= range.end) return;
  const std::size_t w0 = (range.begin - 1) / 64;
  for (std::size_t w = w0; w < a.size(); ++w) {
    std::uint64_t word = a[w] | b[w];
    if (w == w0) word &= ~std::uint64_t{0} << ((range.begin - 1) % 64);
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
      word &= word - 1;
      const std::uint64_t id = w * 64 + bit + 1;
      if (id >= range.end) return;
      if (!fn(id)) return;
    }
  }
}

/// Single-set restricted walk.
template <typename Fn>
inline void for_each_machine(const MachineBits& bits, ClassRange range, Fn&& fn) {
  for_each_machine(bits, bits, range, static_cast<Fn&&>(fn));
}

class Fleet {
 public:
  explicit Fleet(std::vector<MachineClass> classes);

  std::size_t size() const { return machines_.size(); }
  const std::vector<MachineClass>& classes() const { return classes_; }
  const MachineClass& class_of(const Machine& m) const { return classes_[m.class_index]; }

  /// 1-based lookup; throws SimError on unknown ids.
  Machine& machine(std::uint64_t id);
  const Machine& machine(std::uint64_t id) const;
  const std::vector<Machine>& machines() const { return machines_; }

  /// True when `task` could run on `m` right now or after a wake: the
  /// machine is not preempted and has a free core and enough free memory.
  bool fits(const Machine& m, const Task& task) const;

  /// Power a machine draws in its current state (W).
  double power_w(const Machine& m) const;

  /// Reserve a core + memory for a placement that has not started yet (the
  /// machine may still be waking). Capacity must fit.
  void reserve(std::uint64_t id, const Task& task, double now);
  /// Turn a reservation into running work.
  void start_task(std::uint64_t id, const Task& task, double now);
  /// Release a running task's core + memory (completion/migration/preempt).
  void finish_task(std::uint64_t id, const Task& task, double now);
  /// Release a reservation that never started (machine died while waking).
  void unreserve(std::uint64_t id, const Task& task, double now);

  /// Drop an idle machine into S-state `s` (> 0). Requires no busy or
  /// reserved cores.
  void sleep(std::uint64_t id, std::size_t s_state, double now);
  /// Begin waking a sleeping machine; returns the time it reaches S0. The
  /// chassis draws S0 power for the whole transition.
  double begin_wake(std::uint64_t id, double now);
  /// Complete a wake transition (at the time begin_wake returned).
  void complete_wake(std::uint64_t id, double now);

  /// Provider reclaimed a transient machine: power drops to zero. The caller
  /// is responsible for the tasks that were running on it.
  void mark_preempted(std::uint64_t id, double now);
  /// A preempted machine comes back, fully on and empty.
  void relaunch(std::uint64_t id, double now);

  /// Total energy drawn by the whole fleet up to `now` (kWh). Const: the
  /// per-machine ledgers are not advanced.
  double total_energy_kwh(double now) const;

  /// Machines currently on (S0) — the placeable pool size. O(1): counters
  /// ride the power-state index.
  std::size_t on_count() const noexcept { return on_count_; }
  std::size_t sleeping_count() const noexcept { return sleeping_count_; }

  /// Power-state occupancy bitsets (see for_each_machine). A machine in no
  /// set is preempted. Kept exact by every transition method.
  const MachineBits& on_bits() const noexcept { return on_bits_; }
  const MachineBits& sleeping_bits() const noexcept { return sleeping_bits_; }
  const MachineBits& waking_bits() const noexcept { return waking_bits_; }

  /// On/waking machines with at least one free core — the candidates a
  /// placement can actually take (memory still checked per machine).
  /// Updated in settle(), which every mutator runs, so it tracks capacity
  /// changes (reserve/finish) as well as power transitions. This is what
  /// lets policies skip a dense-but-full fleet instead of probing every
  /// machine's capacity per placement.
  const MachineBits& awake_free_bits() const noexcept { return awake_free_bits_; }

  /// Sleeping machines split by S-state (index 0 is always empty — only
  /// s > 0 sleeps). Sleepers are always empty (sleep() requires zero busy
  /// or reserved cores), so within one (class, S-state) group every sleeper
  /// is interchangeable for placement and policies only ever need the
  /// lowest-id bit of each group instead of scoring every sleeper.
  const MachineBits& sleeping_bits(std::size_t s_state) const {
    return sleeping_by_state_[s_state];
  }
  /// Number of per-S-state sets (max S-state table size across classes).
  std::size_t s_state_count() const noexcept { return sleeping_by_state_.size(); }

  /// Machine-id range of class `ci`.
  ClassRange class_range(std::size_t ci) const { return class_ranges_[ci]; }

 private:
  void settle(Machine& m, double now);
  /// Clear/set the index bit for m's current power state.
  void index_remove(const Machine& m);
  void index_add(const Machine& m);
  /// Recompute m's awake_free bit from its current state.
  void update_free_bit(const Machine& m);

  std::vector<MachineClass> classes_;
  std::vector<Machine> machines_;
  std::vector<ClassRange> class_ranges_;
  MachineBits on_bits_;
  MachineBits sleeping_bits_;
  MachineBits waking_bits_;
  MachineBits awake_free_bits_;
  std::vector<MachineBits> sleeping_by_state_;
  std::size_t on_count_ = 0;
  std::size_t sleeping_count_ = 0;
};

}  // namespace preempt::fleet
