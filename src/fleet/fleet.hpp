// The fleet registry: machines instantiated from machine classes, with
// energy-consistent power-state transitions.
//
// Fleet generalizes sim::ClusterManager from "a bag of identical transient
// VMs" to "a datacenter of machine classes with sleep states": it owns every
// Machine, enforces the state machine (on <-> sleeping/waking, preempted <->
// relaunched), tracks core/memory capacity, and integrates each machine's
// power draw into an energy ledger on every transition. It knows nothing
// about events or policies — FleetSimulator drives it.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/machine.hpp"
#include "fleet/task.hpp"

namespace preempt::fleet {

class Fleet {
 public:
  explicit Fleet(std::vector<MachineClass> classes);

  std::size_t size() const { return machines_.size(); }
  const std::vector<MachineClass>& classes() const { return classes_; }
  const MachineClass& class_of(const Machine& m) const { return classes_[m.class_index]; }

  /// 1-based lookup; throws SimError on unknown ids.
  Machine& machine(std::uint64_t id);
  const Machine& machine(std::uint64_t id) const;
  const std::vector<Machine>& machines() const { return machines_; }

  /// True when `task` could run on `m` right now or after a wake: the
  /// machine is not preempted and has a free core and enough free memory.
  bool fits(const Machine& m, const Task& task) const;

  /// Power a machine draws in its current state (W).
  double power_w(const Machine& m) const;

  /// Reserve a core + memory for a placement that has not started yet (the
  /// machine may still be waking). Capacity must fit.
  void reserve(std::uint64_t id, const Task& task, double now);
  /// Turn a reservation into running work.
  void start_task(std::uint64_t id, const Task& task, double now);
  /// Release a running task's core + memory (completion/migration/preempt).
  void finish_task(std::uint64_t id, const Task& task, double now);
  /// Release a reservation that never started (machine died while waking).
  void unreserve(std::uint64_t id, const Task& task, double now);

  /// Drop an idle machine into S-state `s` (> 0). Requires no busy or
  /// reserved cores.
  void sleep(std::uint64_t id, std::size_t s_state, double now);
  /// Begin waking a sleeping machine; returns the time it reaches S0. The
  /// chassis draws S0 power for the whole transition.
  double begin_wake(std::uint64_t id, double now);
  /// Complete a wake transition (at the time begin_wake returned).
  void complete_wake(std::uint64_t id, double now);

  /// Provider reclaimed a transient machine: power drops to zero. The caller
  /// is responsible for the tasks that were running on it.
  void mark_preempted(std::uint64_t id, double now);
  /// A preempted machine comes back, fully on and empty.
  void relaunch(std::uint64_t id, double now);

  /// Total energy drawn by the whole fleet up to `now` (kWh). Const: the
  /// per-machine ledgers are not advanced.
  double total_energy_kwh(double now) const;

  /// Machines currently on (S0) — the placeable pool size.
  std::size_t on_count() const;
  std::size_t sleeping_count() const;

 private:
  void settle(Machine& m, double now);

  std::vector<MachineClass> classes_;
  std::vector<Machine> machines_;
};

}  // namespace preempt::fleet
