#include "fleet/fleet.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace preempt::fleet {

namespace {

[[noreturn]] void bad_machine(std::uint64_t id) {
  throw SimError("fleet: unknown machine id " + std::to_string(id));
}

}  // namespace

std::string to_string(SlaTier tier) {
  switch (tier) {
    case SlaTier::kSla0: return "sla0";
    case SlaTier::kSla1: return "sla1";
    case SlaTier::kSla2: return "sla2";
    case SlaTier::kSla3: return "sla3";
  }
  return "sla2";
}

std::optional<SlaTier> sla_tier_from_string(const std::string& text) {
  if (text == "sla0") return SlaTier::kSla0;
  if (text == "sla1") return SlaTier::kSla1;
  if (text == "sla2") return SlaTier::kSla2;
  if (text == "sla3") return SlaTier::kSla3;
  return std::nullopt;
}

double sla_target_multiplier(SlaTier tier) {
  switch (tier) {
    case SlaTier::kSla0: return 1.2;
    case SlaTier::kSla1: return 1.5;
    case SlaTier::kSla2: return 2.0;
    case SlaTier::kSla3: return 0.0;  // best effort: no target
  }
  return 2.0;
}

std::string to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kSteady: return "steady";
    case ArrivalPattern::kBurstCycle: return "burst-cycle";
    case ArrivalPattern::kSmallBursts: return "small-bursts";
  }
  return "steady";
}

std::optional<ArrivalPattern> arrival_pattern_from_string(const std::string& text) {
  if (text == "steady") return ArrivalPattern::kSteady;
  if (text == "burst-cycle") return ArrivalPattern::kBurstCycle;
  if (text == "small-bursts") return ArrivalPattern::kSmallBursts;
  return std::nullopt;
}

Fleet::Fleet(std::vector<MachineClass> classes) : classes_(std::move(classes)) {
  std::uint64_t next_id = 1;
  class_ranges_.reserve(classes_.size());
  for (std::size_t ci = 0; ci < classes_.size(); ++ci) {
    const MachineClass& mc = classes_[ci];
    PREEMPT_REQUIRE(!mc.mips.empty() && !mc.s_state_power_w.empty(),
                    "machine class '" + mc.name + "' needs MIPS and S-state tables");
    PREEMPT_REQUIRE(mc.s_state_wake_hours.size() == mc.s_state_power_w.size(),
                    "machine class '" + mc.name + "': wake table must match S-state table");
    class_ranges_.push_back({next_id, next_id + mc.count});
    for (std::size_t i = 0; i < mc.count; ++i) {
      Machine m;
      m.id = next_id++;
      m.class_index = ci;
      m.power = MachinePower::kOn;
      m.power_w = mc.s_state_power_w.front();
      machines_.push_back(m);
    }
  }
  const std::size_t words = (machines_.size() + 63) / 64;
  on_bits_.assign(words, 0);
  sleeping_bits_.assign(words, 0);
  waking_bits_.assign(words, 0);
  awake_free_bits_.assign(words, 0);
  std::size_t max_s_states = 1;
  for (const MachineClass& mc : classes_) {
    max_s_states = std::max(max_s_states, mc.s_state_power_w.size());
  }
  sleeping_by_state_.assign(max_s_states, MachineBits(words, 0));
  for (const Machine& m : machines_) {
    index_add(m);
    update_free_bit(m);
  }
}

void Fleet::index_remove(const Machine& m) {
  const std::uint64_t bit = std::uint64_t{1} << ((m.id - 1) % 64);
  const std::size_t w = (m.id - 1) / 64;
  switch (m.power) {
    case MachinePower::kOn:
      on_bits_[w] &= ~bit;
      --on_count_;
      break;
    case MachinePower::kSleeping:
      sleeping_bits_[w] &= ~bit;
      sleeping_by_state_[m.s_state][w] &= ~bit;
      --sleeping_count_;
      break;
    case MachinePower::kWaking:
      waking_bits_[w] &= ~bit;
      break;
    case MachinePower::kPreempted:
      break;  // preempted machines are in no set
  }
}

void Fleet::index_add(const Machine& m) {
  const std::uint64_t bit = std::uint64_t{1} << ((m.id - 1) % 64);
  const std::size_t w = (m.id - 1) / 64;
  switch (m.power) {
    case MachinePower::kOn:
      on_bits_[w] |= bit;
      ++on_count_;
      break;
    case MachinePower::kSleeping:
      sleeping_bits_[w] |= bit;
      sleeping_by_state_[m.s_state][w] |= bit;
      ++sleeping_count_;
      break;
    case MachinePower::kWaking:
      waking_bits_[w] |= bit;
      break;
    case MachinePower::kPreempted:
      break;
  }
}

Machine& Fleet::machine(std::uint64_t id) {
  if (id == 0 || id > machines_.size()) bad_machine(id);
  return machines_[id - 1];
}

const Machine& Fleet::machine(std::uint64_t id) const {
  if (id == 0 || id > machines_.size()) bad_machine(id);
  return machines_[id - 1];
}

bool Fleet::fits(const Machine& m, const Task& task) const {
  if (m.power == MachinePower::kPreempted) return false;
  const MachineClass& mc = classes_[m.class_index];
  return m.busy_total() < mc.cores && m.memory_used_mb + task.memory_mb <= mc.memory_mb;
}

double Fleet::power_w(const Machine& m) const {
  const MachineClass& mc = classes_[m.class_index];
  switch (m.power) {
    case MachinePower::kPreempted:
      return 0.0;
    case MachinePower::kSleeping:
      return mc.s_state_power_w[m.s_state];
    case MachinePower::kWaking:
    case MachinePower::kOn:
      // Chassis at S0 plus the active cores at P0.
      return mc.s_state_power_w.front() +
             static_cast<double>(m.cores_busy) * mc.core_power_w();
  }
  return 0.0;
}

void Fleet::update_free_bit(const Machine& m) {
  const std::uint64_t bit = std::uint64_t{1} << ((m.id - 1) % 64);
  const std::size_t w = (m.id - 1) / 64;
  const bool free =
      (m.power == MachinePower::kOn || m.power == MachinePower::kWaking) &&
      m.busy_total() < classes_[m.class_index].cores;
  if (free) {
    awake_free_bits_[w] |= bit;
  } else {
    awake_free_bits_[w] &= ~bit;
  }
}

void Fleet::settle(Machine& m, double now) {
  if (now > m.last_change) {
    m.energy_wh += m.power_w * (now - m.last_change);
    m.last_change = now;
  }
  m.power_w = power_w(m);
  // Every mutator funnels through settle with the machine in its new state,
  // so refreshing the capacity index here keeps it exact by construction.
  update_free_bit(m);
}

void Fleet::reserve(std::uint64_t id, const Task& task, double now) {
  Machine& m = machine(id);
  PREEMPT_CHECK(m.power != MachinePower::kPreempted, "reserving on a preempted machine");
  PREEMPT_CHECK(fits(m, task), "reserving beyond machine capacity");
  m.cores_reserved += 1;
  m.memory_used_mb += task.memory_mb;
  settle(m, now);
}

void Fleet::start_task(std::uint64_t id, const Task& task, double now) {
  Machine& m = machine(id);
  PREEMPT_CHECK(m.power == MachinePower::kOn, "starting a task on a machine that is not on");
  PREEMPT_CHECK(m.cores_reserved > 0, "starting a task without a reservation");
  (void)task;
  m.cores_reserved -= 1;
  m.cores_busy += 1;
  settle(m, now);
}

void Fleet::finish_task(std::uint64_t id, const Task& task, double now) {
  Machine& m = machine(id);
  PREEMPT_CHECK(m.cores_busy > 0, "finishing a task on a machine with no busy cores");
  m.cores_busy -= 1;
  m.memory_used_mb -= task.memory_mb;
  if (m.memory_used_mb < 0.0) m.memory_used_mb = 0.0;
  settle(m, now);
}

void Fleet::unreserve(std::uint64_t id, const Task& task, double now) {
  Machine& m = machine(id);
  PREEMPT_CHECK(m.cores_reserved > 0, "releasing a reservation that does not exist");
  m.cores_reserved -= 1;
  m.memory_used_mb -= task.memory_mb;
  if (m.memory_used_mb < 0.0) m.memory_used_mb = 0.0;
  settle(m, now);
}

void Fleet::sleep(std::uint64_t id, std::size_t s_state, double now) {
  Machine& m = machine(id);
  const MachineClass& mc = classes_[m.class_index];
  PREEMPT_REQUIRE(s_state > 0 && s_state < mc.s_state_power_w.size(),
                  "sleep state out of range for machine class '" + mc.name + "'");
  PREEMPT_CHECK(m.power == MachinePower::kOn, "only an on machine can sleep");
  PREEMPT_CHECK(m.busy_total() == 0, "sleeping a machine with busy or reserved cores");
  index_remove(m);
  m.power = MachinePower::kSleeping;
  m.s_state = s_state;
  index_add(m);
  settle(m, now);
}

double Fleet::begin_wake(std::uint64_t id, double now) {
  Machine& m = machine(id);
  PREEMPT_CHECK(m.power == MachinePower::kSleeping, "only a sleeping machine can wake");
  const MachineClass& mc = classes_[m.class_index];
  index_remove(m);
  m.power = MachinePower::kWaking;
  m.wake_ready_at = now + mc.s_state_wake_hours[m.s_state];
  m.s_state = 0;
  index_add(m);
  settle(m, now);
  return m.wake_ready_at;
}

void Fleet::complete_wake(std::uint64_t id, double now) {
  Machine& m = machine(id);
  if (m.power != MachinePower::kWaking) return;  // preempted mid-wake
  index_remove(m);
  m.power = MachinePower::kOn;
  index_add(m);
  settle(m, now);
}

void Fleet::mark_preempted(std::uint64_t id, double now) {
  Machine& m = machine(id);
  PREEMPT_CHECK(m.power != MachinePower::kPreempted, "machine preempted twice");
  index_remove(m);
  m.power = MachinePower::kPreempted;
  m.cores_busy = 0;
  m.cores_reserved = 0;
  m.memory_used_mb = 0.0;
  m.s_state = 0;
  settle(m, now);
}

void Fleet::relaunch(std::uint64_t id, double now) {
  Machine& m = machine(id);
  PREEMPT_CHECK(m.power == MachinePower::kPreempted, "relaunching a machine that is not preempted");
  m.power = MachinePower::kOn;
  index_add(m);
  settle(m, now);
}

double Fleet::total_energy_kwh(double now) const {
  double wh = 0.0;
  for (const Machine& m : machines_) {
    wh += m.energy_wh;
    if (now > m.last_change) wh += m.power_w * (now - m.last_change);
  }
  return wh / 1000.0;
}

}  // namespace preempt::fleet
