#include "fleet/spec.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "fleet/placement.hpp"

namespace preempt::fleet {

namespace {

void fail(const std::string& message) { throw InvalidArgument(message); }

double as_finite_number(const JsonValue& value, const std::string& field) {
  if (!value.is_number() || !std::isfinite(value.as_number())) {
    fail("fleet field '" + field + "' must be a finite number");
  }
  return value.as_number();
}

std::uint64_t as_uint(const JsonValue& value, const std::string& field) {
  const double v = as_finite_number(value, field);
  if (v < 0 || v > 9007199254740992.0 || v != std::floor(v)) {
    fail("fleet field '" + field + "' must be a whole number in 0..2^53");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& as_string(const JsonValue& value, const std::string& field) {
  if (!value.is_string()) fail("fleet field '" + field + "' must be a string");
  return value.as_string();
}

bool as_bool(const JsonValue& value, const std::string& field) {
  if (!value.is_bool()) fail("fleet field '" + field + "' must be a boolean");
  return value.as_bool();
}

std::vector<double> as_number_array(const JsonValue& value, const std::string& field) {
  if (!value.is_array()) fail("fleet field '" + field + "' must be an array of numbers");
  std::vector<double> out;
  for (const auto& v : value.as_array()) out.push_back(as_finite_number(v, field));
  return out;
}

JsonValue numbers_to_json(const std::vector<double>& values) {
  JsonArray arr;
  for (double v : values) arr.emplace_back(v);
  return JsonValue(std::move(arr));
}

JsonValue machine_to_json(const MachineClass& mc) {
  JsonObject obj;
  obj.emplace_back("name", mc.name);
  obj.emplace_back("count", mc.count);
  obj.emplace_back("cores", mc.cores);
  obj.emplace_back("memory_mb", mc.memory_mb);
  obj.emplace_back("mips", numbers_to_json(mc.mips));
  obj.emplace_back("p_states_w", numbers_to_json(mc.p_state_power_w));
  obj.emplace_back("s_states_w", numbers_to_json(mc.s_state_power_w));
  obj.emplace_back("wake_hours", numbers_to_json(mc.s_state_wake_hours));
  return JsonValue(std::move(obj));
}

MachineClass machine_from_json(const JsonValue& value, const std::string& field) {
  if (!value.is_object()) fail("fleet field '" + field + "' must be an object");
  MachineClass mc;
  for (const auto& [key, v] : value.as_object()) {
    const std::string path = field + "." + key;
    if (key == "name") {
      mc.name = as_string(v, path);
    } else if (key == "count") {
      mc.count = static_cast<std::size_t>(as_uint(v, path));
    } else if (key == "cores") {
      mc.cores = static_cast<std::size_t>(as_uint(v, path));
    } else if (key == "memory_mb") {
      mc.memory_mb = as_finite_number(v, path);
    } else if (key == "mips") {
      mc.mips = as_number_array(v, path);
    } else if (key == "p_states_w") {
      mc.p_state_power_w = as_number_array(v, path);
    } else if (key == "s_states_w") {
      mc.s_state_power_w = as_number_array(v, path);
    } else if (key == "wake_hours") {
      mc.s_state_wake_hours = as_number_array(v, path);
    } else {
      fail("unknown fleet field '" + path + "'");
    }
  }
  return mc;
}

JsonValue task_to_json(const TaskClass& tc) {
  JsonObject obj;
  obj.emplace_back("name", tc.name);
  obj.emplace_back("sla", to_string(tc.sla));
  obj.emplace_back("pattern", to_string(tc.pattern));
  obj.emplace_back("start_hour", tc.start_hour);
  obj.emplace_back("end_hour", tc.end_hour);
  obj.emplace_back("interarrival_hours", tc.interarrival_hours);
  if (tc.pattern != ArrivalPattern::kSteady) {
    obj.emplace_back("burst_on_hours", tc.burst_on_hours);
    obj.emplace_back("burst_off_hours", tc.burst_off_hours);
  }
  obj.emplace_back("runtime_hours", tc.runtime_hours);
  obj.emplace_back("reference_mips", tc.reference_mips);
  obj.emplace_back("memory_mb", tc.memory_mb);
  return JsonValue(std::move(obj));
}

TaskClass task_from_json(const JsonValue& value, const std::string& field) {
  if (!value.is_object()) fail("fleet field '" + field + "' must be an object");
  TaskClass tc;
  for (const auto& [key, v] : value.as_object()) {
    const std::string path = field + "." + key;
    if (key == "name") {
      tc.name = as_string(v, path);
    } else if (key == "sla") {
      const auto sla = sla_tier_from_string(as_string(v, path));
      if (!sla) fail("unknown SLA tier '" + v.as_string() + "' in field '" + path + "'");
      tc.sla = *sla;
    } else if (key == "pattern") {
      const auto pattern = arrival_pattern_from_string(as_string(v, path));
      if (!pattern) {
        fail("unknown arrival pattern '" + v.as_string() + "' in field '" + path +
             "' (expected steady|burst-cycle|small-bursts)");
      }
      tc.pattern = *pattern;
    } else if (key == "start_hour") {
      tc.start_hour = as_finite_number(v, path);
    } else if (key == "end_hour") {
      tc.end_hour = as_finite_number(v, path);
    } else if (key == "interarrival_hours") {
      tc.interarrival_hours = as_finite_number(v, path);
    } else if (key == "burst_on_hours") {
      tc.burst_on_hours = as_finite_number(v, path);
    } else if (key == "burst_off_hours") {
      tc.burst_off_hours = as_finite_number(v, path);
    } else if (key == "runtime_hours") {
      tc.runtime_hours = as_finite_number(v, path);
    } else if (key == "reference_mips") {
      tc.reference_mips = as_finite_number(v, path);
    } else if (key == "memory_mb") {
      tc.memory_mb = as_finite_number(v, path);
    } else {
      fail("unknown fleet field '" + path + "'");
    }
  }
  return tc;
}

/// Expected arrival count of one class (active time over mean inter-arrival).
double expected_arrivals(const TaskClass& tc) {
  const double span = std::max(0.0, tc.end_hour - tc.start_hour);
  double active = span;
  if (tc.pattern != ArrivalPattern::kSteady) {
    const double cycle = tc.burst_on_hours + tc.burst_off_hours;
    if (cycle > 0.0) active = span * tc.burst_on_hours / cycle;
  }
  return tc.interarrival_hours > 0.0 ? active / tc.interarrival_hours : 0.0;
}

}  // namespace

JsonValue to_json(const FleetSpec& spec) {
  JsonObject obj;
  JsonArray machines;
  for (const auto& mc : spec.machines) machines.push_back(machine_to_json(mc));
  obj.emplace_back("machines", std::move(machines));
  JsonArray tasks;
  for (const auto& tc : spec.tasks) tasks.push_back(task_to_json(tc));
  obj.emplace_back("tasks", std::move(tasks));
  obj.emplace_back("placement", spec.placement);
  obj.emplace_back("rebalance_interval_hours", spec.rebalance_interval_hours);
  obj.emplace_back("migration_hours_per_gb", spec.migration_hours_per_gb);
  obj.emplace_back("preemptions", spec.preemptions);
  obj.emplace_back("relaunch_hours", spec.relaunch_hours);
  obj.emplace_back("horizon_hours", spec.horizon_hours);
  return JsonValue(std::move(obj));
}

FleetSpec fleet_spec_from_json(const JsonValue& value) {
  if (!value.is_object()) fail("the 'fleet' block must be a JSON object");
  FleetSpec spec;
  for (const auto& [key, v] : value.as_object()) {
    if (key == "machines") {
      if (!v.is_array()) fail("fleet field 'machines' must be an array");
      spec.machines.clear();
      std::size_t i = 0;
      for (const auto& m : v.as_array()) {
        spec.machines.push_back(machine_from_json(m, "machines[" + std::to_string(i++) + "]"));
      }
    } else if (key == "tasks") {
      if (!v.is_array()) fail("fleet field 'tasks' must be an array");
      spec.tasks.clear();
      std::size_t i = 0;
      for (const auto& t : v.as_array()) {
        spec.tasks.push_back(task_from_json(t, "tasks[" + std::to_string(i++) + "]"));
      }
    } else if (key == "placement") {
      spec.placement = as_string(v, key);
    } else if (key == "rebalance_interval_hours") {
      spec.rebalance_interval_hours = as_finite_number(v, key);
    } else if (key == "migration_hours_per_gb") {
      spec.migration_hours_per_gb = as_finite_number(v, key);
    } else if (key == "preemptions") {
      spec.preemptions = as_bool(v, key);
    } else if (key == "relaunch_hours") {
      spec.relaunch_hours = as_finite_number(v, key);
    } else if (key == "horizon_hours") {
      spec.horizon_hours = as_finite_number(v, key);
    } else {
      fail("unknown fleet field '" + key + "'");
    }
  }
  validate(spec);
  return spec;
}

void validate(const FleetSpec& spec) {
  if (spec.machines.empty()) fail("fleet needs at least one machine class");
  const std::size_t total = spec.machine_count();
  if (total < 1 || total > 100000) fail("fleet machine count must be in 1..100000");
  double max_memory = 0.0;
  for (const auto& mc : spec.machines) {
    const std::string where = "machine class '" + mc.name + "'";
    if (mc.count < 1) fail(where + ": count must be >= 1");
    if (mc.cores < 1 || mc.cores > 1024) fail(where + ": cores must be in 1..1024");
    if (mc.memory_mb <= 0.0) fail(where + ": memory_mb must be > 0");
    if (mc.mips.empty() || mc.mips.front() <= 0.0) fail(where + ": mips must lead with P0 > 0");
    if (mc.s_state_power_w.empty()) fail(where + ": s_states_w must not be empty");
    if (mc.s_state_wake_hours.size() != mc.s_state_power_w.size()) {
      fail(where + ": wake_hours must have one entry per S-state");
    }
    if (mc.s_state_wake_hours.front() != 0.0) fail(where + ": wake_hours[0] must be 0");
    for (double w : mc.s_state_power_w) {
      if (w < 0.0) fail(where + ": S-state power must be >= 0");
    }
    for (double w : mc.s_state_wake_hours) {
      if (w < 0.0) fail(where + ": wake_hours must be >= 0");
    }
    for (double p : mc.p_state_power_w) {
      if (p < 0.0) fail(where + ": P-state power must be >= 0");
    }
    max_memory = std::max(max_memory, mc.memory_mb);
  }
  if (spec.tasks.empty()) fail("fleet needs at least one task class");
  double arrivals = 0.0;
  for (const auto& tc : spec.tasks) {
    const std::string where = "task class '" + tc.name + "'";
    if (tc.interarrival_hours <= 0.0) fail(where + ": interarrival_hours must be > 0");
    if (tc.runtime_hours <= 0.0) fail(where + ": runtime_hours must be > 0");
    if (tc.reference_mips <= 0.0) fail(where + ": reference_mips must be > 0");
    if (tc.memory_mb < 0.0) fail(where + ": memory_mb must be >= 0");
    if (tc.memory_mb > max_memory) {
      fail(where + ": memory_mb exceeds every machine class (no machine can run it)");
    }
    if (tc.end_hour <= tc.start_hour) fail(where + ": end_hour must be > start_hour");
    if (tc.pattern != ArrivalPattern::kSteady &&
        (tc.burst_on_hours <= 0.0 || tc.burst_off_hours < 0.0)) {
      fail(where + ": burst windows must be positive");
    }
    arrivals += expected_arrivals(tc);
  }
  if (arrivals > 5e6) {
    fail("fleet task classes expect ~" + std::to_string(static_cast<long long>(arrivals)) +
         " arrivals per replication; the limit is 5000000");
  }
  if (spec.rebalance_interval_hours <= 0.0) fail("rebalance_interval_hours must be > 0");
  if (spec.migration_hours_per_gb < 0.0) fail("migration_hours_per_gb must be >= 0");
  if (spec.relaunch_hours <= 0.0) fail("relaunch_hours must be > 0");
  if (spec.horizon_hours <= 0.0) fail("horizon_hours must be > 0");
  make_placement_policy(spec.placement);  // surfaces unknown policy names now
}

}  // namespace preempt::fleet
