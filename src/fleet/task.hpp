// SLA-tiered tasks and bursty task-class workload shapes.
//
// Tasks arrive from declarative TaskClass generators (steady Poisson
// arrivals, long on/off burst cycles, or short high-rate burst windows —
// the cloudsim-eec BurstCycle / SmallBursts shapes) and carry an SLA tier
// that sets the response-time target the fleet is graded against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace preempt::fleet {

/// SLA0 is the strictest tier, SLA3 best-effort (never counted violated).
enum class SlaTier { kSla0 = 0, kSla1 = 1, kSla2 = 2, kSla3 = 3 };

inline constexpr std::size_t kSlaTiers = 4;

std::string to_string(SlaTier tier);
std::optional<SlaTier> sla_tier_from_string(const std::string& text);

/// Response-time target as a multiple of the task's nominal runtime: a task
/// violates its SLA when (completion - arrival) exceeds the multiplier times
/// its reference-machine runtime. SLA3 is best effort (infinite target).
double sla_target_multiplier(SlaTier tier);

/// How a task class spreads its arrivals over the run.
enum class ArrivalPattern {
  kSteady,       ///< Poisson arrivals at a constant rate over [start, end)
  kBurstCycle,   ///< long alternating on/off phases (BurstCycle.md shape)
  kSmallBursts,  ///< short high-rate windows separated by long gaps
};

std::string to_string(ArrivalPattern pattern);
std::optional<ArrivalPattern> arrival_pattern_from_string(const std::string& text);

/// One declarative stream of tasks.
struct TaskClass {
  std::string name = "batch";
  SlaTier sla = SlaTier::kSla2;
  ArrivalPattern pattern = ArrivalPattern::kSteady;
  double start_hour = 0.0;
  double end_hour = 24.0;
  /// Mean inter-arrival inside an active window (exponential).
  double interarrival_hours = 0.1;
  /// Burst shape (ignored for kSteady): active window length and the gap to
  /// the next window. kBurstCycle defaults to long 50/50 phases; kSmallBursts
  /// to short spikes with long gaps.
  double burst_on_hours = 2.0;
  double burst_off_hours = 2.0;
  /// Nominal runtime on a reference machine (scaled by machine MIPS).
  double runtime_hours = 0.5;
  double reference_mips = 3000.0;
  double memory_mb = 1024.0;
};

/// Where an arrived task currently is in its lifecycle.
enum class TaskState {
  kPending,   ///< queued, waiting for a placement
  kWakeWait,  ///< reserved on a machine that is still waking
  kMigrating, ///< memory in flight to `machine`
  kRunning,   ///< consuming a core on `machine`
  kDone,
};

/// One arrived task instance.
struct Task {
  std::uint64_t id = 0;  ///< 1-based arrival order (deterministic)
  std::size_t class_index = 0;
  TaskState state = TaskState::kPending;
  SlaTier sla = SlaTier::kSla2;
  double arrival = 0.0;
  double runtime_hours = 0.0;  ///< nominal, at reference MIPS
  double reference_mips = 3000.0;
  double memory_mb = 0.0;

  // Execution state.
  std::uint64_t machine = 0;        ///< current machine (0 = not placed)
  double remaining_hours = 0.0;     ///< nominal work left (reference MIPS)
  double segment_started = 0.0;     ///< when the current segment began
  double segment_rate = 0.0;        ///< nominal-hours consumed per sim-hour
  std::uint64_t completion_event = 0;
  std::size_t preemptions = 0;
  std::size_t migrations = 0;
  bool completed = false;
  double completion_time = 0.0;
};

}  // namespace preempt::fleet
