#include "fleet/placement.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace preempt::fleet {

namespace {

bool placeable(const Machine& m) {
  return m.power == MachinePower::kOn || m.power == MachinePower::kWaking;
}

// Each policy ships in two forms: the `*-scan` reference walks the whole
// machine vector per placement, the default form answers the same question
// from the fleet's bitset indexes. Awake candidates come from
// awake_free_bits() — exactly the on/waking machines with a free core, i.e.
// the ones that pass the capacity half of fits() — so a dense-but-full fleet
// costs popcount-time instead of a probe per machine; fits() is still
// applied per candidate for the memory check. The indexed walks visit
// candidates in the same ascending-id order and apply the same tie-breaks,
// so a run under either form is byte-identical — the scan forms stay
// registered so tests can assert that.

/// Greedy first-fit: first awake machine that fits, else the first sleeper
/// that fits (lowest id wins everywhere). Never powers anything down.
class GreedyFirstFitScan : public PlacementPolicy {
 public:
  std::string name() const override { return "first-fit-scan"; }

  std::uint64_t place(const Task& task, const Fleet& fleet) const override {
    std::uint64_t sleeper = 0;
    for (const Machine& m : fleet.machines()) {
      if (!fleet.fits(m, task)) continue;
      if (placeable(m)) return m.id;
      if (sleeper == 0 && m.power == MachinePower::kSleeping) sleeper = m.id;
    }
    return sleeper;
  }

  RebalancePlan rebalance(const Fleet&, const std::vector<std::vector<const Task*>>&,
                          double) const override {
    return {};
  }
};

class GreedyFirstFit final : public GreedyFirstFitScan {
 public:
  std::string name() const override { return "first-fit"; }

  std::uint64_t place(const Task& task, const Fleet& fleet) const override {
    std::uint64_t found = 0;
    for_each_machine(fleet.awake_free_bits(), [&](std::uint64_t id) {
      if (!fleet.fits(fleet.machines()[id - 1], task)) return true;
      found = id;
      return false;
    });
    if (found != 0) return found;
    for_each_machine(fleet.sleeping_bits(), [&](std::uint64_t id) {
      if (!fleet.fits(fleet.machines()[id - 1], task)) return true;
      found = id;
      return false;
    });
    return found;
  }
};

/// Modified best-fit decreasing: place wherever the fleet's power draw grows
/// the least, consolidate lightly-loaded machines at rebalance, and sleep
/// whatever drains empty.
class MbfdScan : public PlacementPolicy {
 public:
  std::string name() const override { return "mbfd-scan"; }

  std::uint64_t place(const Task& task, const Fleet& fleet) const override {
    std::uint64_t best = 0;
    double best_delta = std::numeric_limits<double>::infinity();
    for (const Machine& m : fleet.machines()) {
      if (!fleet.fits(m, task)) continue;
      const MachineClass& mc = fleet.class_of(m);
      double delta = mc.core_power_w();
      if (m.power == MachinePower::kSleeping) {
        // Waking raises the chassis from its S-state draw to S0.
        delta += mc.s_state_power_w.front() - mc.s_state_power_w[m.s_state];
      }
      if (delta < best_delta) {
        best_delta = delta;
        best = m.id;
      }
    }
    return best;
  }

  RebalancePlan rebalance(const Fleet& fleet,
                          const std::vector<std::vector<const Task*>>& running,
                          double) const override {
    RebalancePlan plan;
    // Provisional free capacity per machine, updated as migrations are planned.
    const std::size_t n = fleet.size();
    std::vector<std::size_t> free_cores(n, 0);
    std::vector<double> free_mb(n, 0.0);
    std::vector<bool> source(n, false);
    for (const Machine& m : fleet.machines()) {
      const MachineClass& mc = fleet.class_of(m);
      free_cores[m.id - 1] = mc.cores - std::min(mc.cores, m.busy_total());
      free_mb[m.id - 1] = mc.memory_mb - m.memory_used_mb;
    }
    // Try to fully drain machines at most a quarter full: every task must fit
    // on some busier awake machine, else the machine keeps all of them.
    for (const Machine& m : fleet.machines()) {
      if (m.power != MachinePower::kOn || m.cores_busy == 0 || m.cores_reserved > 0) continue;
      const MachineClass& mc = fleet.class_of(m);
      if (m.busy_total() * 4 > mc.cores) continue;
      std::vector<RebalancePlan::Migration> moves;
      std::vector<double> mb_taken(n, 0.0);
      std::vector<std::size_t> cores_taken(n, 0);
      bool drained = true;
      for (const Task* task : running[m.id - 1]) {
        std::uint64_t to = 0;
        for (const Machine& cand : fleet.machines()) {
          if (cand.id == m.id || cand.power != MachinePower::kOn || source[cand.id - 1]) continue;
          if (cand.busy_total() <= m.busy_total()) continue;  // only consolidate upward
          const std::size_t i = cand.id - 1;
          if (free_cores[i] > cores_taken[i] &&
              free_mb[i] - mb_taken[i] >= task->memory_mb) {
            to = cand.id;
            cores_taken[i] += 1;
            mb_taken[i] += task->memory_mb;
            break;
          }
        }
        if (to == 0) {
          drained = false;
          break;
        }
        moves.push_back({task->id, to});
      }
      if (!drained || moves.empty()) continue;
      source[m.id - 1] = true;
      for (std::size_t i = 0; i < n; ++i) {
        free_cores[i] -= cores_taken[i];
        free_mb[i] -= mb_taken[i];
      }
      plan.migrations.insert(plan.migrations.end(), moves.begin(), moves.end());
    }
    // Sleep every empty on machine (sources drain asynchronously and get
    // picked up on a later tick once their migrations land).
    for (const Machine& m : fleet.machines()) {
      if (m.power == MachinePower::kOn && m.busy_total() == 0 && !source[m.id - 1]) {
        const MachineClass& mc = fleet.class_of(m);
        plan.sleeps.emplace_back(m.id, std::min<std::size_t>(3, mc.deepest_s_state()));
      }
    }
    return plan;
  }
};

class Mbfd final : public MbfdScan {
 public:
  std::string name() const override { return "mbfd"; }

  std::uint64_t place(const Task& task, const Fleet& fleet) const override {
    // The scan keeps the first machine with the strictly smallest power
    // delta in id order — i.e. the (delta, id)-lexicographic minimum. Awake
    // machines of one class all share the same delta (one more core at P0),
    // so the first fitting awake machine per class dominates the rest of
    // its class and the awake side needs one first-fit walk per class
    // range. Sleepers' deltas depend on their S-state, so each fitting
    // sleeper is scored individually.
    std::uint64_t best = 0;
    double best_delta = std::numeric_limits<double>::infinity();
    const auto offer = [&](std::uint64_t id, double delta) {
      if (delta < best_delta || (delta == best_delta && id < best)) {
        best_delta = delta;
        best = id;
      }
    };
    const auto& machines = fleet.machines();
    for (std::size_t ci = 0; ci < fleet.classes().size(); ++ci) {
      const MachineClass& mc = fleet.classes()[ci];
      for_each_machine(fleet.awake_free_bits(), fleet.class_range(ci),
                       [&](std::uint64_t id) {
                         if (!fleet.fits(machines[id - 1], task)) return true;
                         offer(id, mc.core_power_w());
                         // later awake machines of the class cannot beat it
                         return false;
                       });
      // Sleepers are always empty (sleep() requires zero busy/reserved
      // cores), so both fit and delta depend only on (class, S-state): the
      // lowest-id sleeper of each group represents it, and one failed fit
      // rules out the whole class.
      for (std::size_t s = 1; s < mc.s_state_power_w.size(); ++s) {
        bool class_fits = true;
        for_each_machine(fleet.sleeping_bits(s), fleet.class_range(ci),
                         [&](std::uint64_t id) {
                           if (fleet.fits(machines[id - 1], task)) {
                             offer(id, mc.core_power_w() + mc.s_state_power_w.front() -
                                           mc.s_state_power_w[s]);
                           } else {
                             class_fits = false;
                           }
                           return false;  // one representative per group
                         });
        if (!class_fits) break;
      }
    }
    return best;
  }
};

/// E-ECO-style warm-pool sizing: pack arrivals onto the most-loaded awake
/// machine, and keep awake-pool utilization inside [kLow, kHigh] by waking
/// or sleeping whole machines at rebalance ticks.
class EEcoScan : public PlacementPolicy {
 public:
  static constexpr double kLow = 0.25;
  static constexpr double kHigh = 0.75;

  std::string name() const override { return "e-eco-scan"; }

  std::uint64_t place(const Task& task, const Fleet& fleet) const override {
    // Best fit: most-loaded awake machine that still fits (packs the warm
    // pool tight so rebalance can sleep the rest).
    std::uint64_t best = 0;
    std::size_t best_load = 0;
    for (const Machine& m : fleet.machines()) {
      if (!placeable(m) || !fleet.fits(m, task)) continue;
      if (best == 0 || m.busy_total() > best_load) {
        best = m.id;
        best_load = m.busy_total();
      }
    }
    if (best != 0) return best;
    // The warm pool is full: fall back to the cheapest-wake sleeper so tasks
    // never starve; the wake latency is the policy's SLA cost.
    std::uint64_t sleeper = 0;
    std::size_t shallowest = std::numeric_limits<std::size_t>::max();
    for (const Machine& m : fleet.machines()) {
      if (m.power != MachinePower::kSleeping || !fleet.fits(m, task)) continue;
      if (m.s_state < shallowest) {
        shallowest = m.s_state;
        sleeper = m.id;
      }
    }
    return sleeper;
  }

  RebalancePlan rebalance(const Fleet& fleet, const std::vector<std::vector<const Task*>>&,
                          double) const override {
    RebalancePlan plan;
    double capacity = 0.0;
    double active = 0.0;
    for (const Machine& m : fleet.machines()) {
      if (m.power == MachinePower::kOn || m.power == MachinePower::kWaking) {
        capacity += static_cast<double>(fleet.class_of(m).cores);
        active += static_cast<double>(m.busy_total());
      }
    }
    if (capacity <= 0.0) capacity = 1.0;
    const double util = active / capacity;
    if (util > kHigh) {
      // Wake shallow sleepers first until the projected pool sits mid-band.
      std::vector<const Machine*> sleepers;
      for (const Machine& m : fleet.machines()) {
        if (m.power == MachinePower::kSleeping) sleepers.push_back(&m);
      }
      std::sort(sleepers.begin(), sleepers.end(), [](const Machine* a, const Machine* b) {
        return a->s_state != b->s_state ? a->s_state < b->s_state : a->id < b->id;
      });
      for (const Machine* m : sleepers) {
        if (active / capacity <= (kLow + kHigh) / 2.0) break;
        plan.wakes.push_back(m->id);
        capacity += static_cast<double>(fleet.class_of(*m).cores);
      }
    } else if (util < kLow) {
      // Sleep idle machines, always keeping at least one awake.
      std::size_t awake = 0;
      for (const Machine& m : fleet.machines()) {
        if (m.power == MachinePower::kOn || m.power == MachinePower::kWaking) ++awake;
      }
      for (const Machine& m : fleet.machines()) {
        if (m.power != MachinePower::kOn || m.busy_total() != 0) continue;
        const double cores = static_cast<double>(fleet.class_of(m).cores);
        if (awake <= 1 || capacity - cores <= 0.0) break;
        if (active / (capacity - cores) > (kLow + kHigh) / 2.0) break;
        const MachineClass& mc = fleet.class_of(m);
        plan.sleeps.emplace_back(m.id, std::min<std::size_t>(3, mc.deepest_s_state()));
        capacity -= cores;
        --awake;
      }
    }
    return plan;
  }
};

class EEco final : public EEcoScan {
 public:
  std::string name() const override { return "e-eco"; }

  std::uint64_t place(const Task& task, const Fleet& fleet) const override {
    // Strictly-greater load keeps the earliest machine at the maximum, and
    // the bitset walk is ascending-id like the scan, so ties break the same.
    std::uint64_t best = 0;
    std::size_t best_load = 0;
    const auto& machines = fleet.machines();
    for_each_machine(fleet.awake_free_bits(), [&](std::uint64_t id) {
      const Machine& m = machines[id - 1];
      if (!fleet.fits(m, task)) return true;
      if (best == 0 || m.busy_total() > best_load) {
        best = id;
        best_load = m.busy_total();
      }
      return true;
    });
    if (best != 0) return best;
    // Shallowest-state fitting sleeper, lowest id first: walking the
    // per-S-state sets in state order visits candidates in exactly the
    // order the scan's (s_state, id) minimum resolves them.
    std::uint64_t sleeper = 0;
    for (std::size_t s = 1; s < fleet.s_state_count() && sleeper == 0; ++s) {
      for_each_machine(fleet.sleeping_bits(s), [&](std::uint64_t id) {
        if (!fleet.fits(machines[id - 1], task)) return true;
        sleeper = id;
        return false;
      });
    }
    return sleeper;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> make_placement_policy(const std::string& name) {
  if (name == "first-fit") return std::make_unique<GreedyFirstFit>();
  if (name == "mbfd") return std::make_unique<Mbfd>();
  if (name == "e-eco") return std::make_unique<EEco>();
  if (name == "first-fit-scan") return std::make_unique<GreedyFirstFitScan>();
  if (name == "mbfd-scan") return std::make_unique<MbfdScan>();
  if (name == "e-eco-scan") return std::make_unique<EEcoScan>();
  throw InvalidArgument("unknown placement policy '" + name +
                        "' (expected first-fit|mbfd|e-eco, or a -scan reference variant)");
}

std::vector<std::string> placement_policy_names() {
  return {"first-fit", "mbfd", "e-eco", "first-fit-scan", "mbfd-scan", "e-eco-scan"};
}

}  // namespace preempt::fleet
