// Machine classes and per-machine runtime state for the fleet simulator.
//
// A MachineClass follows the cloudsim-eec convention: a homogeneous pool of
// machines with per-core MIPS levels (P-states), chassis sleep states
// (S-states) with per-state power draw and wake latency, and fixed core and
// memory capacity. S-state 0 is fully on; deeper states draw less power and
// take longer to return to S0. Power is in watts, memory in MB, time in
// hours (like the rest of the library).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace preempt::fleet {

struct MachineClass {
  std::string name = "standard";
  std::size_t count = 1;       ///< machines of this class in the fleet
  std::size_t cores = 8;       ///< hardware threads per machine
  double memory_mb = 32768.0;  ///< RAM per machine

  /// Per-core MIPS at each P-state, fastest first. Only P0 is used for
  /// service-time scaling today, but the whole ladder is part of the class
  /// so configs round-trip losslessly.
  std::vector<double> mips = {3000.0, 2400.0, 2000.0, 1500.0};

  /// Per-core power draw (W) at each P-state, fastest first.
  std::vector<double> p_state_power_w = {12.0, 8.0, 6.0, 4.0};

  /// Chassis power draw (W) per S-state, S0 first, deepest (off) last.
  std::vector<double> s_state_power_w = {120.0, 100.0, 100.0, 80.0, 40.0, 10.0, 0.0};

  /// Wake latency (hours) from each S-state back to S0. s_state_wake_hours[0]
  /// is 0 by definition; the deepest state is the most expensive to leave.
  std::vector<double> s_state_wake_hours = {0.0,        2.0 / 3600.0, 4.0 / 3600.0,
                                            8.0 / 3600.0, 20.0 / 3600.0, 60.0 / 3600.0,
                                            180.0 / 3600.0};

  /// The MIPS a task's cores run at (P0).
  double peak_mips() const { return mips.empty() ? 0.0 : mips.front(); }
  /// Per-core power at P0 (the state busy cores run in).
  double core_power_w() const {
    return p_state_power_w.empty() ? 0.0 : p_state_power_w.front();
  }
  std::size_t deepest_s_state() const {
    return s_state_power_w.empty() ? 0 : s_state_power_w.size() - 1;
  }
};

/// Runtime power situation of one machine.
enum class MachinePower {
  kOn,         ///< S0: placeable, cores may be busy
  kSleeping,   ///< some S-state > 0: no tasks, reduced draw
  kWaking,     ///< transitioning to S0; placements may already be bound to it
  kPreempted,  ///< provider reclaimed the (transient) machine; it draws nothing
};

/// One machine of the fleet. Mutated only by Fleet (which keeps the energy
/// integral consistent with every state change).
struct Machine {
  std::uint64_t id = 0;        ///< 1-based; stable for the whole run
  std::size_t class_index = 0;
  std::size_t cores_busy = 0;      ///< running task cores
  std::size_t cores_reserved = 0;  ///< bound by placements not yet started (waking)
  double memory_used_mb = 0.0;
  MachinePower power = MachinePower::kOn;
  std::size_t s_state = 0;   ///< meaningful when sleeping
  double wake_ready_at = 0.0;  ///< when a kWaking machine reaches S0

  // Energy bookkeeping: energy_wh accumulates power * dt lazily; power_w is
  // the draw since last_change.
  double energy_wh = 0.0;
  double power_w = 0.0;
  double last_change = 0.0;

  std::size_t busy_total() const { return cores_busy + cores_reserved; }
};

}  // namespace preempt::fleet
