// Pluggable placement policies for the fleet simulator.
//
// A PlacementPolicy answers two questions the simulator asks: where does an
// arriving (or displaced) task go, and — at each rebalance tick — which
// machines should change power state and which tasks should migrate. The
// three built-ins span the SLA/energy trade-off space:
//
//   first-fit  greedy first-fit over the whole fleet; never sleeps a
//              machine. Fewest violations, highest energy.
//   mbfd       modified best-fit decreasing: place where the marginal power
//              increase is smallest, consolidate lightly-loaded machines at
//              rebalance, and sleep the machines that drain empty.
//   e-eco      warm-pool sizing: pack onto the awake pool, keep pool
//              utilization inside a band by waking/sleeping whole machines.
//              Lowest energy; wake latency costs SLA during bursts.
//
// Policies are stateless and deterministic: given the same fleet snapshot
// they return the same answer, which keeps whole-scenario runs reproducible.
//
// Each policy also registers a `<name>-scan` variant: the reference
// implementation that walks the whole machine vector per placement. The
// default forms answer from the fleet's power-state bitsets (same candidate
// order, same tie-breaks — byte-identical runs) without touching machines
// that cannot be chosen; the scan forms exist so tests can assert that
// equivalence.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace preempt::fleet {

/// What a rebalance tick decided. The simulator applies migrations first,
/// then wakes, then sleeps.
struct RebalancePlan {
  struct Migration {
    std::uint64_t task_id = 0;
    std::uint64_t to = 0;  ///< destination machine
  };
  std::vector<Migration> migrations;
  std::vector<std::uint64_t> wakes;  ///< sleeping machines to bring to S0
  /// Idle machines to drop into an S-state (machine id, target state).
  std::vector<std::pair<std::uint64_t, std::size_t>> sleeps;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string name() const = 0;

  /// Choose a machine for `task`. May return a sleeping machine — the
  /// simulator wakes it and binds the reservation to it. Returns 0 when
  /// nothing in the fleet fits.
  virtual std::uint64_t place(const Task& task, const Fleet& fleet) const = 0;

  /// Periodic housekeeping. `running[i]` lists the tasks currently running
  /// on machine id i+1.
  virtual RebalancePlan rebalance(const Fleet& fleet,
                                  const std::vector<std::vector<const Task*>>& running,
                                  double now) const = 0;
};

/// "first-fit" | "mbfd" | "e-eco" (indexed) or their "-scan" reference
/// variants; throws InvalidArgument on anything else.
std::unique_ptr<PlacementPolicy> make_placement_policy(const std::string& name);
std::vector<std::string> placement_policy_names();

}  // namespace preempt::fleet
