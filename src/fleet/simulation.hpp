// The fleet discrete-event simulation: one replication of a FleetSpec on the
// sim::Simulator calendar queue.
//
// Task classes emit arrivals (Poisson over their active windows), the
// placement policy maps tasks to machines (waking sleepers when it must),
// machines are preempted under the scenario's ground-truth lifetime law and
// relaunched after a dark interval, and a periodic rebalance tick lets the
// policy migrate tasks (stop-and-copy, priced per GB moved) and resize the
// warm pool. The run drains to completion after the arrival horizon, then
// reports per-SLA violation counts, the fleet energy integral, and
// migration / preemption totals.
//
// Everything is single-threaded and seeded through substreams of one scenario
// seed, so a replication is a pure function of (spec, seed, lifetime law).
#pragma once

#include <array>
#include <cstdint>

#include "common/json.hpp"
#include "dist/distribution.hpp"
#include "fleet/spec.hpp"

namespace preempt::fleet {

/// Outcome of one fleet replication.
struct FleetReport {
  std::size_t machines = 0;
  std::size_t tasks_submitted = 0;
  std::size_t tasks_completed = 0;
  /// Completed tasks / SLA misses per tier (index = SlaTier).
  std::array<std::size_t, kSlaTiers> sla_tasks{};
  std::array<std::size_t, kSlaTiers> sla_violations{};
  double total_energy_kwh = 0.0;
  std::size_t migrations = 0;          ///< completed stop-and-copy transfers
  std::size_t machine_preemptions = 0;
  std::size_t task_preemptions = 0;    ///< task restarts caused by preemptions
  double makespan_hours = 0.0;         ///< last completion (drain may pass the horizon)
  double avg_response_hours = 0.0;

  double violation_rate(std::size_t tier) const {
    return sla_tasks[tier] == 0
               ? 0.0
               : static_cast<double>(sla_violations[tier]) /
                     static_cast<double>(sla_tasks[tier]);
  }

  JsonValue to_json() const;
};

/// Run one replication. `preemption_law` may be null (or spec.preemptions
/// false) to disable machine preemptions; lifetimes are drawn per machine
/// from substreams of `seed`, independent of event interleaving.
FleetReport simulate_fleet(const FleetSpec& spec, std::uint64_t seed,
                           const dist::Distribution* preemption_law);

}  // namespace preempt::fleet
