#include "fleet/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "fleet/fleet.hpp"
#include "fleet/placement.hpp"
#include "sim/simulator.hpp"

namespace preempt::fleet {

namespace {

// Same-time event ordering: free capacity first (completions, transfer
// arrivals), then machine state changes, then new work, then housekeeping.
constexpr int kCompletionPrio = 0;
constexpr int kWakePrio = 1;
constexpr int kPreemptPrio = 2;
constexpr int kArrivalPrio = 3;
constexpr int kRebalancePrio = 4;

// Substream indices: task classes use 0..N-1, machines an offset far above
// any plausible class count.
constexpr std::uint64_t kMachineStreamBase = 1u << 20;

class FleetSimulation {
 public:
  FleetSimulation(const FleetSpec& spec, std::uint64_t seed, const dist::Distribution* law)
      : spec_(spec),
        law_(spec.preemptions ? law : nullptr),
        fleet_(spec.machines),
        policy_(make_placement_policy(spec.placement)) {
    const std::size_t n = fleet_.size();
    running_on_.resize(n);
    wake_waiting_.resize(n);
    inbound_.resize(n);
    draw_buf_.resize(n);
    draw_pos_.resize(n, 0);
    machine_rng_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      machine_rng_.emplace_back(substream_seed(seed, kMachineStreamBase + i));
    }
    class_rng_.reserve(spec.tasks.size());
    for (std::size_t i = 0; i < spec.tasks.size(); ++i) {
      class_rng_.emplace_back(substream_seed(seed, i));
    }
  }

  FleetReport run() {
    for (std::size_t c = 0; c < spec_.tasks.size(); ++c) {
      const double first = next_arrival(c, spec_.tasks[c].start_hour);
      if (first < arrival_limit(c)) {
        sim_.schedule_at(first, [this, c] { on_arrival(c); }, kArrivalPrio);
      }
    }
    for (std::size_t i = 0; i < fleet_.size(); ++i) arm_preemption(i, 0.0);
    if (spec_.rebalance_interval_hours < spec_.horizon_hours) {
      sim_.schedule_at(spec_.rebalance_interval_hours, [this] { on_rebalance(); },
                       kRebalancePrio);
    }
    sim_.run();
    return finalize();
  }

 private:
  double arrival_limit(std::size_t c) const {
    return std::min(spec_.tasks[c].end_hour, spec_.horizon_hours);
  }

  /// Next arrival at or after `from`: a Poisson process over the class's
  /// active windows (the whole [start, end) span for kSteady, the on-phases
  /// of the burst cycle otherwise). The walk is indexed by window number, so
  /// each iteration consumes at least one whole on-window of exponential gap
  /// — an incremental `cur += tiny` walk can stall below one ULP near a
  /// window edge and never terminate.
  double next_arrival(std::size_t c, double from) {
    const TaskClass& tc = spec_.tasks[c];
    double gap = class_rng_[c].exponential(1.0 / tc.interarrival_hours);
    if (tc.pattern == ArrivalPattern::kSteady) return std::max(from, tc.start_hour) + gap;
    const double cycle = tc.burst_on_hours + tc.burst_off_hours;
    const double rel = std::max(from, tc.start_hour) - tc.start_hour;
    double window = std::floor(rel / cycle);
    double phase = rel - window * cycle;
    if (phase >= tc.burst_on_hours) {  // inside an off-phase: next window
      window += 1.0;
      phase = 0.0;
    }
    while (true) {
      const double window_left = tc.burst_on_hours - phase;
      if (gap <= window_left) {
        return tc.start_hour + window * cycle + phase + gap;
      }
      gap -= window_left;
      window += 1.0;
      phase = 0.0;
    }
  }

  void on_arrival(std::size_t c) {
    const TaskClass& tc = spec_.tasks[c];
    const double now = sim_.now();
    Task task;
    task.id = tasks_.size() + 1;
    task.class_index = c;
    task.sla = tc.sla;
    task.arrival = now;
    task.runtime_hours = tc.runtime_hours;
    task.reference_mips = tc.reference_mips;
    task.memory_mb = tc.memory_mb;
    task.remaining_hours = tc.runtime_hours;
    tasks_.push_back(task);
    pending_[static_cast<std::size_t>(tc.sla)].push_back(task.id);

    const double next = next_arrival(c, now);
    if (next < arrival_limit(c)) {
      sim_.schedule_at(next, [this, c] { on_arrival(c); }, kArrivalPrio);
    }
    dispatch();
  }

  /// Strict-priority dispatch with head-of-line blocking per tier: SLA0
  /// first; a tier whose head cannot be placed stops, lower tiers still get
  /// a chance (their tasks may be smaller).
  void dispatch() {
    for (auto& queue : pending_) {
      while (!queue.empty()) {
        const std::uint64_t id = queue.front();
        const std::uint64_t m = policy_->place(tasks_[id - 1], fleet_);
        if (m == 0) break;
        queue.pop_front();
        bind(tasks_[id - 1], m);
      }
    }
  }

  /// Attach a placed task to its machine: run now if it is on, ride the
  /// pending wake otherwise (starting one if the machine is asleep).
  void bind(Task& task, std::uint64_t m) {
    const double now = sim_.now();
    const MachinePower power = fleet_.machine(m).power;
    fleet_.reserve(m, task, now);
    if (power == MachinePower::kOn) {
      fleet_.start_task(m, task, now);
      start_segment(task, m);
      return;
    }
    if (power == MachinePower::kSleeping) {
      const double ready = fleet_.begin_wake(m, now);
      sim_.schedule_at(ready, [this, m] { on_wake_complete(m); }, kWakePrio);
    }
    task.state = TaskState::kWakeWait;
    task.machine = m;
    wake_waiting_[m - 1].push_back(task.id);
  }

  /// Begin a running segment on machine `m` (already holding a busy core).
  void start_segment(Task& task, std::uint64_t m) {
    const double now = sim_.now();
    task.state = TaskState::kRunning;
    task.machine = m;
    task.segment_started = now;
    const MachineClass& mc = fleet_.class_of(fleet_.machine(m));
    task.segment_rate = mc.peak_mips() / task.reference_mips;
    const double duration = task.remaining_hours / task.segment_rate;
    const std::uint64_t id = task.id;
    task.completion_event =
        sim_.schedule_in(duration, [this, id] { on_complete(id); }, kCompletionPrio);
    running_on_[m - 1].push_back(id);
  }

  void on_complete(std::uint64_t id) {
    Task& task = tasks_[id - 1];
    const double now = sim_.now();
    task.state = TaskState::kDone;
    task.completed = true;
    task.completion_time = now;
    task.remaining_hours = 0.0;
    task.completion_event = 0;
    fleet_.finish_task(task.machine, task, now);
    detach(running_on_[task.machine - 1], id);
    task.machine = 0;
    dispatch();
  }

  void on_wake_complete(std::uint64_t m) {
    const double now = sim_.now();
    fleet_.complete_wake(m, now);
    if (fleet_.machine(m).power != MachinePower::kOn) return;  // preempted mid-wake
    std::vector<std::uint64_t> waiting = std::move(wake_waiting_[m - 1]);
    wake_waiting_[m - 1].clear();
    for (const std::uint64_t id : waiting) {
      Task& task = tasks_[id - 1];
      if (task.state != TaskState::kWakeWait || task.machine != m) continue;
      fleet_.start_task(m, task, now);
      start_segment(task, m);
    }
    dispatch();
  }

  /// The machine's next lifetime draw, through a per-machine buffer
  /// refilled by the law's batched sample_many. machine_rng_[i] is consumed
  /// only here, and sample_many is bit-identical to sequential sample()
  /// calls, so pre-drawing leaves the stream — and every report — unchanged
  /// for any batch size.
  double next_lifetime(std::size_t machine_index) {
    std::vector<double>& buf = draw_buf_[machine_index];
    if (draw_pos_[machine_index] == buf.size()) {
      buf.resize(std::max<std::size_t>(1, spec_.preemption_draw_batch));
      law_->sample_many(machine_rng_[machine_index], buf);
      draw_pos_[machine_index] = 0;
    }
    return buf[draw_pos_[machine_index]++];
  }

  /// Draw the machine's next preemption from the lifetime law. Draws landing
  /// past the horizon are dropped so the post-horizon drain terminates.
  void arm_preemption(std::size_t machine_index, double from) {
    if (law_ == nullptr) return;
    const double life = next_lifetime(machine_index);
    const double when = from + life;
    if (when >= spec_.horizon_hours) return;
    sim_.schedule_at(when, [this, machine_index] { on_preempt(machine_index); }, kPreemptPrio);
  }

  void on_preempt(std::size_t machine_index) {
    const std::uint64_t m = machine_index + 1;
    const double now = sim_.now();
    ++machine_preemptions_;

    // Running tasks lose their whole segment's progress (the paper's
    // temporally constrained reclamation: no checkpoint, full restart).
    std::vector<std::uint64_t> victims = std::move(running_on_[machine_index]);
    running_on_[machine_index].clear();
    for (const std::uint64_t id : victims) {
      Task& task = tasks_[id - 1];
      sim_.cancel(task.completion_event);
      task.completion_event = 0;
      task.remaining_hours = task.runtime_hours;
      ++task.preemptions;
      ++task_preemptions_;
      requeue(task);
    }
    // Placements bound but not yet running just go back to the queue.
    for (auto* list : {&wake_waiting_[machine_index], &inbound_[machine_index]}) {
      for (const std::uint64_t id : *list) {
        Task& task = tasks_[id - 1];
        if (task.machine == m && task.state != TaskState::kDone) requeue(task);
      }
      list->clear();
    }
    fleet_.mark_preempted(m, now);

    sim_.schedule_in(spec_.relaunch_hours, [this, machine_index] {
      const std::uint64_t id = machine_index + 1;
      fleet_.relaunch(id, sim_.now());
      arm_preemption(machine_index, sim_.now());
      dispatch();
    }, kWakePrio);
  }

  void requeue(Task& task) {
    task.state = TaskState::kPending;
    task.machine = 0;
    task.segment_rate = 0.0;
    pending_[static_cast<std::size_t>(task.sla)].push_back(task.id);
  }

  void on_rebalance() {
    const double now = sim_.now();
    std::vector<std::vector<const Task*>> running(fleet_.size());
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      running[i].reserve(running_on_[i].size());
      for (const std::uint64_t id : running_on_[i]) running[i].push_back(&tasks_[id - 1]);
    }
    const RebalancePlan plan = policy_->rebalance(fleet_, running, now);

    for (const RebalancePlan::Migration& mv : plan.migrations) {
      if (mv.task_id == 0 || mv.task_id > tasks_.size()) continue;
      Task& task = tasks_[mv.task_id - 1];
      if (task.state != TaskState::kRunning || task.machine == mv.to) continue;
      const Machine& dest = fleet_.machine(mv.to);
      if (dest.power != MachinePower::kOn || !fleet_.fits(dest, task)) continue;
      begin_migration(task, mv.to);
    }
    for (const std::uint64_t m : plan.wakes) {
      if (fleet_.machine(m).power != MachinePower::kSleeping) continue;
      const double ready = fleet_.begin_wake(m, now);
      sim_.schedule_at(ready, [this, m] { on_wake_complete(m); }, kWakePrio);
    }
    for (const auto& [m, s_state] : plan.sleeps) {
      const Machine& mach = fleet_.machine(m);
      if (mach.power == MachinePower::kOn && mach.busy_total() == 0) {
        fleet_.sleep(m, s_state, now);
      }
    }
    dispatch();

    const double next = now + spec_.rebalance_interval_hours;
    if (next < spec_.horizon_hours) {
      sim_.schedule_at(next, [this] { on_rebalance(); }, kRebalancePrio);
    }
  }

  /// Stop-and-copy migration: bank the source segment's progress, free the
  /// source core, and ship the task's memory to a reservation on `to`.
  void begin_migration(Task& task, std::uint64_t to) {
    const double now = sim_.now();
    const double elapsed = now - task.segment_started;
    task.remaining_hours =
        std::max(0.0, task.remaining_hours - elapsed * task.segment_rate);
    sim_.cancel(task.completion_event);
    task.completion_event = 0;
    fleet_.finish_task(task.machine, task, now);
    detach(running_on_[task.machine - 1], task.id);
    fleet_.reserve(to, task, now);
    task.state = TaskState::kMigrating;
    task.machine = to;
    inbound_[to - 1].push_back(task.id);
    const double transfer = (task.memory_mb / 1024.0) * spec_.migration_hours_per_gb;
    const std::uint64_t id = task.id;
    sim_.schedule_in(transfer, [this, id, to] { on_migration_arrive(id, to); },
                     kCompletionPrio);
  }

  void on_migration_arrive(std::uint64_t id, std::uint64_t to) {
    Task& task = tasks_[id - 1];
    // The destination may have been preempted mid-flight (the task was
    // requeued and this event is stale).
    if (task.state != TaskState::kMigrating || task.machine != to) return;
    detach(inbound_[to - 1], id);
    ++migrations_;
    ++task.migrations;
    fleet_.start_task(to, task, sim_.now());
    start_segment(task, to);
  }

  static void detach(std::vector<std::uint64_t>& list, std::uint64_t id) {
    const auto it = std::find(list.begin(), list.end(), id);
    PREEMPT_CHECK(it != list.end(), "fleet: task missing from its machine list");
    list.erase(it);
  }

  FleetReport finalize() const {
    FleetReport report;
    report.machines = fleet_.size();
    report.tasks_submitted = tasks_.size();
    double response_sum = 0.0;
    for (const Task& task : tasks_) {
      if (!task.completed) continue;
      ++report.tasks_completed;
      const std::size_t tier = static_cast<std::size_t>(task.sla);
      ++report.sla_tasks[tier];
      const double response = task.completion_time - task.arrival;
      response_sum += response;
      const double multiplier = sla_target_multiplier(task.sla);
      if (multiplier > 0.0 && response > multiplier * task.runtime_hours) {
        ++report.sla_violations[tier];
      }
    }
    report.total_energy_kwh = fleet_.total_energy_kwh(sim_.now());
    report.migrations = migrations_;
    report.machine_preemptions = machine_preemptions_;
    report.task_preemptions = task_preemptions_;
    report.makespan_hours = sim_.now();
    if (report.tasks_completed > 0) {
      report.avg_response_hours =
          response_sum / static_cast<double>(report.tasks_completed);
    }
    return report;
  }

  const FleetSpec& spec_;
  const dist::Distribution* law_;
  sim::Simulator sim_;
  Fleet fleet_;
  std::unique_ptr<PlacementPolicy> policy_;

  std::vector<Task> tasks_;
  std::array<std::deque<std::uint64_t>, kSlaTiers> pending_;
  std::vector<std::vector<std::uint64_t>> running_on_;
  std::vector<std::vector<std::uint64_t>> wake_waiting_;
  std::vector<std::vector<std::uint64_t>> inbound_;
  std::vector<Rng> class_rng_;
  std::vector<Rng> machine_rng_;
  std::vector<std::vector<double>> draw_buf_;  ///< pre-drawn lifetimes per machine
  std::vector<std::size_t> draw_pos_;

  std::size_t migrations_ = 0;
  std::size_t machine_preemptions_ = 0;
  std::size_t task_preemptions_ = 0;
};

}  // namespace

JsonValue FleetReport::to_json() const {
  JsonObject obj;
  obj.emplace_back("machines", machines);
  obj.emplace_back("tasks_submitted", tasks_submitted);
  obj.emplace_back("tasks_completed", tasks_completed);
  JsonObject sla;
  for (std::size_t tier = 0; tier < kSlaTiers; ++tier) {
    JsonObject entry;
    entry.emplace_back("tasks", sla_tasks[tier]);
    entry.emplace_back("violations", sla_violations[tier]);
    entry.emplace_back("violation_rate", violation_rate(tier));
    sla.emplace_back("sla" + std::to_string(tier), std::move(entry));
  }
  obj.emplace_back("sla", std::move(sla));
  obj.emplace_back("total_energy_kwh", total_energy_kwh);
  obj.emplace_back("migrations", migrations);
  obj.emplace_back("machine_preemptions", machine_preemptions);
  obj.emplace_back("task_preemptions", task_preemptions);
  obj.emplace_back("makespan_hours", makespan_hours);
  obj.emplace_back("avg_response_hours", avg_response_hours);
  return JsonValue(std::move(obj));
}

FleetReport simulate_fleet(const FleetSpec& spec, std::uint64_t seed,
                           const dist::Distribution* preemption_law) {
  validate(spec);
  FleetSimulation simulation(spec, seed, preemption_law);
  return simulation.run();
}

}  // namespace preempt::fleet
