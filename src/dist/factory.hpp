// By-name construction of lifetime laws for declarative callers (the
// scenario layer, JSON specs, sweep axes).
//
// Every family in src/dist that is constructible from a flat parameter
// vector is reachable here by its Distribution::name() string; "-truncated"
// suffixes wrap any parametric base in TruncatedDistribution with the last
// parameter as the horizon. Data-driven families take their data as the
// parameter vector: "empirical" consumes the samples themselves, "piecewise"
// the knot times followed by the knot CDF values.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dist/distribution.hpp"

namespace preempt::dist {

/// One constructible family: its name plus the parameter labels expected by
/// make_distribution, in order ("..." marks variable-length data families).
struct FamilyInfo {
  std::string name;
  std::vector<std::string> parameters;
};

/// All families make_distribution accepts, in a stable listing order
/// (truncated wrappers are not enumerated; append "-truncated" + horizon).
const std::vector<FamilyInfo>& distribution_families();

/// Build a distribution by family name. Throws InvalidArgument with a clean
/// (no file:line) message on unknown families or wrong parameter counts;
/// parameter-range violations surface the family constructor's own error.
DistributionPtr make_distribution(const std::string& family, std::span<const double> params);

}  // namespace preempt::dist
