// Exponential lifetime — the memoryless baseline the paper's comparators
// start from (constant hazard; what spot-market models assume).
#pragma once

#include "dist/distribution.hpp"

namespace preempt::dist {

class Exponential final : public Distribution {
 public:
  /// Rate λ > 0 (per hour); mean lifetime is 1/λ.
  explicit Exponential(double rate);

  /// Construct from the mean time to failure (MTTF = 1/λ).
  static Exponential from_mttf(double mttf_hours);

  double rate() const noexcept { return rate_; }
  double mttf() const noexcept { return 1.0 / rate_; }

  std::string name() const override { return "exponential"; }
  std::vector<std::string> parameter_names() const override { return {"lambda"}; }
  std::vector<double> parameters() const override { return {rate_}; }
  DistributionPtr clone() const override { return std::make_unique<Exponential>(*this); }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double survival(double t) const override;
  double hazard(double /*t*/) const override { return rate_; }
  double quantile(double p) const override;
  /// −log1p(−U)/λ through the vkernel so batched draws (one log1p_many per
  /// block in sample_many) and single draws share one rounding behaviour.
  double sample(Rng& rng) const override;
  void sample_many(Rng& rng, std::span<double> out) const override;
  double mean() const override { return 1.0 / rate_; }
  double partial_expectation(double a, double b) const override;

 private:
  double rate_;
};

}  // namespace preempt::dist
