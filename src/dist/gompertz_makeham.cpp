#include "dist/gompertz_makeham.hpp"

#include <cmath>

#include "common/error.hpp"

namespace preempt::dist {

GompertzMakeham::GompertzMakeham(double lambda, double alpha, double beta)
    : lambda_(lambda), alpha_(alpha), beta_(beta) {
  PREEMPT_REQUIRE(std::isfinite(lambda) && lambda >= 0.0,
                  "gompertz-makeham lambda must be >= 0");
  PREEMPT_REQUIRE(std::isfinite(alpha) && alpha > 0.0, "gompertz-makeham alpha must be positive");
  PREEMPT_REQUIRE(std::isfinite(beta) && beta > 0.0, "gompertz-makeham beta must be positive");
}

double GompertzMakeham::cumulative_hazard(double t) const {
  return lambda_ * t + alpha_ / beta_ * std::expm1(beta_ * t);
}

double GompertzMakeham::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-cumulative_hazard(t));
}

double GompertzMakeham::pdf(double t) const {
  if (t < 0.0) return 0.0;
  return hazard(t) * survival(t);
}

double GompertzMakeham::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-cumulative_hazard(t));
}

double GompertzMakeham::hazard(double t) const {
  if (t < 0.0) return 0.0;
  return lambda_ + alpha_ * std::exp(beta_ * t);
}

}  // namespace preempt::dist
