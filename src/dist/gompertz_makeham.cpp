#include "dist/gompertz_makeham.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/vkernel.hpp"

namespace preempt::dist {

namespace {
/// Newton lane width of the batched table inversion in sample_many.
constexpr std::size_t kLanes = 16;
/// sample_many block width: draw, split fast/tail lanes, invert.
constexpr std::size_t kBlock = 256;
}  // namespace

GompertzMakeham::GompertzMakeham(double lambda, double alpha, double beta)
    : lambda_(lambda), alpha_(alpha), beta_(beta) {
  PREEMPT_REQUIRE(std::isfinite(lambda) && lambda >= 0.0,
                  "gompertz-makeham lambda must be >= 0");
  PREEMPT_REQUIRE(std::isfinite(alpha) && alpha > 0.0, "gompertz-makeham alpha must be positive");
  PREEMPT_REQUIRE(std::isfinite(beta) && beta > 0.0, "gompertz-makeham beta must be positive");
}

double GompertzMakeham::cumulative_hazard(double t) const {
  return lambda_ * t + alpha_ / beta_ * std::expm1(beta_ * t);
}

double GompertzMakeham::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-cumulative_hazard(t));
}

double GompertzMakeham::pdf(double t) const {
  if (t < 0.0) return 0.0;
  return hazard(t) * survival(t);
}

double GompertzMakeham::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-cumulative_hazard(t));
}

double GompertzMakeham::hazard(double t) const {
  if (t < 0.0) return 0.0;
  return lambda_ + alpha_ * std::exp(beta_ * t);
}

const QuantileTable& GompertzMakeham::quantile_table() const {
  // Table over [0, q(1 - 1e-9)]; rarer tail queries fall back to bisection.
  return table_.get([this] {
    const double t_hi = Distribution::quantile(1.0 - 1e-9);
    return QuantileTable([this](double t) { return cdf(t); }, 0.0, t_hi, 1024);
  });
}

namespace {
/// S(t) = e^{-Λ(t)} feeds both refinement terms: F = 1 − S and f = h·S.
auto gm_cdf_pdf(const GompertzMakeham& d) {
  return [&d](double t) {
    const double s = d.survival(t);
    return std::pair{1.0 - s, d.hazard(t) * s};
  };
}
}  // namespace

double GompertzMakeham::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  const QuantileTable& table = quantile_table();
  if (p > table.p_hi()) return Distribution::quantile(p);
  const double tol = 1e-13 * std::max(1.0, table.t_hi());
  return table.invert(p, gm_cdf_pdf(*this), tol);
}

void GompertzMakeham::eval_lanes(const double* t, double* cdf_out,
                                 double* pdf_out, std::size_t lanes) const {
  double em[kLanes] = {};
  double s[kLanes] = {};
  const double lambda = lambda_;
  const double alpha = alpha_;
  const double beta = beta_;
  const double aob = alpha_ / beta_;
  for (std::size_t j = 0; j < lanes; ++j) em[j] = beta * t[j];
  vk::expm1_many(em, em, lanes);  // em = e^{βt} − 1
  for (std::size_t j = 0; j < lanes; ++j) {
    s[j] = -(lambda * t[j] + aob * em[j]);  // −Λ(t)
  }
  vk::exp_many(s, s, lanes);  // s = e^{−Λ(t)}
  for (std::size_t j = 0; j < lanes; ++j) {
    cdf_out[j] = 1.0 - s[j];
    pdf_out[j] = (lambda + alpha * (em[j] + 1.0)) * s[j];  // h(t) S(t)
  }
}

double GompertzMakeham::sample(Rng& rng) const {
  // Sampling inverts through the single-sweep polish (one batched eval per
  // draw); quantile() keeps the iterated refinement and its tolerance.
  const QuantileTable& table = quantile_table();
  const double u = rng.uniform();
  if (u > table.p_hi()) return Distribution::quantile(u);
  return table.invert_fast(u, [this](const double* t, double* c, double* f,
                                     std::size_t lanes) {
    eval_lanes(t, c, f, lanes);
  });
}

void GompertzMakeham::sample_many(Rng& rng, std::span<double> out) const {
  // Blocked single-sweep inversion: draw the uniforms (same stream order as
  // the per-draw path), route the rare beyond-table tail (~1e-9 of draws)
  // through the bisection quantile, invert the rest lane-parallel with
  // batched expm1/exp. Bit-identical to sample() in a loop.
  const QuantileTable& table = quantile_table();
  const double p_hi = table.p_hi();
  const auto lane_eval = [this](const double* t, double* c, double* f,
                                std::size_t lanes) {
    eval_lanes(t, c, f, lanes);
  };
  double u[kBlock];
  double pc[kBlock];
  double tc[kBlock];
  std::uint32_t idx[kBlock];
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, out.size() - base);
    for (std::size_t i = 0; i < n; ++i) u[i] = rng.uniform();
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {  // branchless fast/tail split
      idx[m] = static_cast<std::uint32_t>(i);
      pc[m] = u[i];
      m += u[i] <= p_hi ? 1 : 0;
    }
    table.invert_fast_many<kLanes>(pc, tc, m, lane_eval);
    for (std::size_t k = 0; k < m; ++k) out[base + idx[k]] = tc[k];
    if (m < n) {  // rare tail draws, resolved by bisection
      for (std::size_t i = 0; i < n; ++i) {
        if (u[i] > p_hi) out[base + i] = Distribution::quantile(u[i]);
      }
    }
  }
}

}  // namespace preempt::dist
