#include "dist/gompertz_makeham.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace preempt::dist {

GompertzMakeham::GompertzMakeham(double lambda, double alpha, double beta)
    : lambda_(lambda), alpha_(alpha), beta_(beta) {
  PREEMPT_REQUIRE(std::isfinite(lambda) && lambda >= 0.0,
                  "gompertz-makeham lambda must be >= 0");
  PREEMPT_REQUIRE(std::isfinite(alpha) && alpha > 0.0, "gompertz-makeham alpha must be positive");
  PREEMPT_REQUIRE(std::isfinite(beta) && beta > 0.0, "gompertz-makeham beta must be positive");
}

double GompertzMakeham::cumulative_hazard(double t) const {
  return lambda_ * t + alpha_ / beta_ * std::expm1(beta_ * t);
}

double GompertzMakeham::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-cumulative_hazard(t));
}

double GompertzMakeham::pdf(double t) const {
  if (t < 0.0) return 0.0;
  return hazard(t) * survival(t);
}

double GompertzMakeham::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-cumulative_hazard(t));
}

double GompertzMakeham::hazard(double t) const {
  if (t < 0.0) return 0.0;
  return lambda_ + alpha_ * std::exp(beta_ * t);
}

const QuantileTable& GompertzMakeham::quantile_table() const {
  // Table over [0, q(1 - 1e-9)]; rarer tail queries fall back to bisection.
  return table_.get([this] {
    const double t_hi = Distribution::quantile(1.0 - 1e-9);
    return QuantileTable([this](double t) { return cdf(t); }, 0.0, t_hi, 1024);
  });
}

namespace {
/// S(t) = e^{-Λ(t)} feeds both refinement terms: F = 1 − S and f = h·S.
auto gm_cdf_pdf(const GompertzMakeham& d) {
  return [&d](double t) {
    const double s = d.survival(t);
    return std::pair{1.0 - s, d.hazard(t) * s};
  };
}
}  // namespace

double GompertzMakeham::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  const QuantileTable& table = quantile_table();
  if (p > table.p_hi()) return Distribution::quantile(p);
  const double tol = 1e-13 * std::max(1.0, table.t_hi());
  return table.invert(p, gm_cdf_pdf(*this), tol);
}

void GompertzMakeham::sample_many(Rng& rng, std::span<double> out) const {
  // Same path as quantile(uniform()) with the table (and its lazy-init
  // mutex) acquired once for the whole batch; uniform() is open-interval so
  // the p <= 0 / p >= 1 branches cannot fire.
  const QuantileTable& table = quantile_table();
  const double tol = 1e-13 * std::max(1.0, table.t_hi());
  const auto eval = gm_cdf_pdf(*this);
  for (double& x : out) {
    const double u = rng.uniform();
    x = u > table.p_hi() ? Distribution::quantile(u) : table.invert(u, eval, tol);
  }
}

}  // namespace preempt::dist
