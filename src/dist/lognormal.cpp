#include "dist/lognormal.hpp"

#include <cmath>
#include <limits>

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/special.hpp"
#include "common/vkernel.hpp"

namespace preempt::dist {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  PREEMPT_REQUIRE(std::isfinite(mu), "lognormal mu must be finite");
  PREEMPT_REQUIRE(std::isfinite(sigma) && sigma > 0.0, "lognormal sigma must be positive");
}

double LogNormal::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return normal_cdf((std::log(t) - mu_) / sigma_);
}

double LogNormal::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double z = (std::log(t) - mu_) / sigma_;
  return normal_pdf(z) / (sigma_ * t);
}

double LogNormal::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  return vk::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::sample(Rng& rng) const { return vk::exp(rng.normal(mu_, sigma_)); }

void LogNormal::sample_many(Rng& rng, std::span<double> out) const {
  // The normal draws stay per-draw (Marsaglia polar rejection cannot be
  // batched without changing the stream); the exp transform runs one
  // exp_many per block, bit-identical to sample() in a loop.
  constexpr std::size_t kBlock = 256;
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, out.size() - base);
    for (std::size_t i = 0; i < n; ++i) out[base + i] = rng.normal(mu_, sigma_);
    vk::exp_many(out.data() + base, out.data() + base, n);
  }
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sq(sigma_)); }

double LogNormal::partial_expectation(double a, double b) const {
  // ∫_a^b t f(t) dt = e^{μ+σ²/2} [Φ((ln b − μ − σ²)/σ) − Φ((ln a − μ − σ²)/σ)].
  const double lo = std::max(a, 0.0);
  if (b <= lo) return 0.0;
  auto upper_arg = [this](double t) {
    if (t <= 0.0) return -std::numeric_limits<double>::infinity();
    return (std::log(t) - mu_ - sq(sigma_)) / sigma_;
  };
  return mean() * (normal_cdf(upper_arg(b)) - normal_cdf(upper_arg(lo)));
}

}  // namespace preempt::dist
