// Piecewise-linear CDF on knots — the paper's Fig. 3 "three straight phases"
// reading of the empirical curve, with a deadline atom when the last knot
// falls short of probability 1.
#pragma once

#include "dist/distribution.hpp"

namespace preempt::dist {

class PiecewiseLinearCdf final : public Distribution {
 public:
  /// Knots: ts strictly increasing (>= 0), fs non-decreasing in [0, 1],
  /// equal lengths >= 2. Mass 1 − fs.back() becomes an atom at ts.back().
  PiecewiseLinearCdf(std::vector<double> ts, std::vector<double> fs);

  const std::vector<double>& knot_times() const noexcept { return ts_; }
  const std::vector<double>& knot_values() const noexcept { return fs_; }
  double deadline_atom() const noexcept { return atom_; }

  std::string name() const override { return "piecewise"; }
  std::vector<std::string> parameter_names() const override;
  std::vector<double> parameters() const override;
  DistributionPtr clone() const override {
    return std::make_unique<PiecewiseLinearCdf>(*this);
  }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  void sample_many(Rng& rng, std::span<double> out) const override;
  double mean() const override;
  double partial_expectation(double a, double b) const override;
  double support_end() const override { return ts_.back(); }

 private:
  std::vector<double> ts_;
  std::vector<double> fs_;
  double atom_ = 0.0;
};

}  // namespace preempt::dist
