#include "dist/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt::dist {

EmpiricalDistribution::EmpiricalDistribution(std::span<const double> samples) {
  PREEMPT_REQUIRE(!samples.empty(), "empirical distribution needs at least one sample");
  sorted_.assign(samples.begin(), samples.end());
  for (double x : sorted_) {
    PREEMPT_REQUIRE(std::isfinite(x) && x >= 0.0, "lifetimes must be finite and >= 0");
  }
  std::sort(sorted_.begin(), sorted_.end());
  KahanSum sum;
  for (double x : sorted_) sum.add(x);
  mean_ = sum.value() / static_cast<double>(sorted_.size());
}

EcdfPoints EmpiricalDistribution::ecdf_points(EcdfConvention convention) const {
  const double n = static_cast<double>(sorted_.size());
  EcdfPoints pts;
  pts.t = sorted_;
  pts.f.reserve(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    const double rank = static_cast<double>(i);
    pts.f.push_back(convention == EcdfConvention::kHazen ? (rank + 0.5) / n : (rank + 1.0) / n);
  }
  return pts;
}

std::vector<std::pair<double, double>> EmpiricalDistribution::histogram_density(
    std::size_t bins) const {
  PREEMPT_REQUIRE(bins >= 1, "histogram needs at least one bin");
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  const double width = (hi - lo) / static_cast<double>(bins);
  std::vector<std::pair<double, double>> out(bins);
  std::vector<std::size_t> counts(bins, 0);
  for (double x : sorted_) {
    std::size_t b = width > 0.0 ? static_cast<std::size_t>((x - lo) / width) : 0;
    if (b >= bins) b = bins - 1;  // right edge lands in the last bin
    ++counts[b];
  }
  const double norm =
      width > 0.0 ? 1.0 / (static_cast<double>(sorted_.size()) * width) : 1.0;
  for (std::size_t b = 0; b < bins; ++b) {
    out[b] = {lo + (static_cast<double>(b) + 0.5) * width,
              static_cast<double>(counts[b]) * norm};
  }
  return out;
}

double EmpiricalDistribution::ks_distance(const Distribution& model) const {
  // sup_t |F_n(t) − F(t)| over distinct sample values. Both functions are
  // right-continuous; the left-side gap must therefore use the model's left
  // limit, or a probability atom shared by model and data (the 24 h deadline
  // reclaim, which ties many samples) would read as a spurious distance.
  const double n = static_cast<double>(sorted_.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < sorted_.size();) {
    const double v = sorted_[i];
    std::size_t j = i;
    while (j < sorted_.size() && sorted_[j] == v) ++j;
    const double below = static_cast<double>(i) / n;   // F_n(v^-)
    const double above = static_cast<double>(j) / n;   // F_n(v)
    const double fm = model.cdf(v);
    const double fm_left = model.cdf(std::nextafter(v, -1.0));
    ks = std::max({ks, std::abs(fm - above), std::abs(fm_left - below)});
    i = j;
  }
  return ks;
}

double EmpiricalDistribution::cdf(double t) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), t);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::pdf(double t) const {
  if (t < sorted_.front() || t > sorted_.back()) return 0.0;
  const std::size_t bins =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(sorted_.size())));
  const double lo = sorted_.front();
  const double width = (sorted_.back() - lo) / static_cast<double>(bins);
  if (width <= 0.0) return 0.0;
  std::size_t b = static_cast<std::size_t>((t - lo) / width);
  if (b >= bins) b = bins - 1;
  const double lo_edge = lo + static_cast<double>(b) * width;
  const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo_edge);
  const auto last = b + 1 == bins
                        ? sorted_.end()
                        : std::lower_bound(sorted_.begin(), sorted_.end(), lo_edge + width);
  const double count = static_cast<double>(last - first);
  return count / (static_cast<double>(sorted_.size()) * width);
}

double EmpiricalDistribution::quantile(double p) const {
  if (p <= 0.0) return sorted_.front();
  if (p >= 1.0) return sorted_.back();
  // Type-7 (linear interpolation between order statistics).
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[i] + frac * (sorted_[i + 1] - sorted_[i]);
}

double EmpiricalDistribution::sample(Rng& rng) const { return quantile(rng.uniform()); }

void EmpiricalDistribution::sample_many(Rng& rng, std::span<double> out) const {
  for (double& x : out) x = quantile(rng.uniform());
}

double EmpiricalDistribution::partial_expectation(double a, double b) const {
  if (b <= a) return 0.0;
  KahanSum sum;
  const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), std::max(a, 0.0));
  const auto last = std::upper_bound(sorted_.begin(), sorted_.end(), b);
  for (auto it = first; it != last; ++it) sum.add(*it);
  return sum.value() / static_cast<double>(sorted_.size());
}

}  // namespace preempt::dist
