#include "dist/exponential.hpp"

#include <cmath>

#include "common/error.hpp"

namespace preempt::dist {

Exponential::Exponential(double rate) : rate_(rate) {
  PREEMPT_REQUIRE(std::isfinite(rate) && rate > 0.0, "exponential rate must be positive");
}

Exponential Exponential::from_mttf(double mttf_hours) {
  PREEMPT_REQUIRE(std::isfinite(mttf_hours) && mttf_hours > 0.0, "MTTF must be positive");
  return Exponential(1.0 / mttf_hours);
}

double Exponential::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-rate_ * t);
}

double Exponential::pdf(double t) const {
  if (t < 0.0) return 0.0;
  return rate_ * std::exp(-rate_ * t);
}

double Exponential::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-rate_ * t);
}

double Exponential::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  return -std::log1p(-p) / rate_;
}

double Exponential::partial_expectation(double a, double b) const {
  // ∫ t λ e^{-λt} dt = -(t + 1/λ) e^{-λt}.
  const double lo = std::max(a, 0.0);
  if (b <= lo) return 0.0;
  auto antiderivative = [this](double t) { return -(t + 1.0 / rate_) * std::exp(-rate_ * t); };
  return antiderivative(b) - antiderivative(lo);
}

}  // namespace preempt::dist
