#include "dist/exponential.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/vkernel.hpp"

namespace preempt::dist {

namespace {
/// Block width of the batched inverse transform in sample_many.
constexpr std::size_t kBlock = 256;
}  // namespace

Exponential::Exponential(double rate) : rate_(rate) {
  PREEMPT_REQUIRE(std::isfinite(rate) && rate > 0.0, "exponential rate must be positive");
}

Exponential Exponential::from_mttf(double mttf_hours) {
  PREEMPT_REQUIRE(std::isfinite(mttf_hours) && mttf_hours > 0.0, "MTTF must be positive");
  return Exponential(1.0 / mttf_hours);
}

double Exponential::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-rate_ * t);
}

double Exponential::pdf(double t) const {
  if (t < 0.0) return 0.0;
  return rate_ * std::exp(-rate_ * t);
}

double Exponential::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-rate_ * t);
}

double Exponential::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(Rng& rng) const {
  return -vk::log1p(-rng.uniform()) / rate_;
}

void Exponential::sample_many(Rng& rng, std::span<double> out) const {
  // Blocked inverse transform: draw the uniforms (same stream order as the
  // per-draw path), one log1p_many per block, then the scale. Bit-identical
  // to sample() in a loop — vkernel batched entry points match the scalar
  // kernel lane for lane.
  double u[kBlock];
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, out.size() - base);
    for (std::size_t i = 0; i < n; ++i) u[i] = -rng.uniform();
    vk::log1p_many(u, u, n);
    for (std::size_t i = 0; i < n; ++i) out[base + i] = -u[i] / rate_;
  }
}

double Exponential::partial_expectation(double a, double b) const {
  // ∫ t λ e^{-λt} dt = -(t + 1/λ) e^{-λt}.
  const double lo = std::max(a, 0.0);
  if (b <= lo) return 0.0;
  auto antiderivative = [this](double t) { return -(t + 1.0 / rate_) * std::exp(-rate_ * t); };
  return antiderivative(b) - antiderivative(lo);
}

}  // namespace preempt::dist
