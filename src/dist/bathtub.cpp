#include "dist/bathtub.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt::dist {

BathtubDistribution::BathtubDistribution(const BathtubParams& params) : params_(params) {
  PREEMPT_REQUIRE(std::isfinite(params.scale) && params.scale > 0.0 && params.scale <= 1.0,
                  "bathtub scale A must be in (0, 1]");
  PREEMPT_REQUIRE(std::isfinite(params.tau1) && params.tau1 > 0.0,
                  "bathtub tau1 must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.tau2) && params.tau2 > 0.0,
                  "bathtub tau2 must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.deadline) && params.deadline > 0.0,
                  "bathtub deadline must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.horizon) && params.horizon > 0.0,
                  "bathtub horizon must be positive");
  // Saturation point: fitted parameters may push the raw CDF to 1 before the
  // horizon (the clamped regime). The density vanishes there, so all moment
  // integrals must stop at t_sat or they would count phantom mass.
  sat_ = params_.horizon;
  const double unclamped_end =
      params_.scale * (1.0 - std::exp(-params_.horizon / params_.tau1) +
                       std::exp((params_.horizon - params_.deadline) / params_.tau2));
  if (unclamped_end > 1.0) {
    double lo = 0.0, hi = params_.horizon;
    for (int i = 0; i < 200 && hi - lo > 1e-14 * params_.horizon; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (raw_cdf(mid) < 1.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    sat_ = 0.5 * (lo + hi);
  }
  raw_at_end_ = raw_cdf(params_.horizon);
  atom_ = clamp01(1.0 - raw_at_end_);
}

double BathtubDistribution::raw_cdf(double t) const {
  if (t <= 0.0) t = 0.0;
  const double f = params_.scale * (1.0 - std::exp(-t / params_.tau1) +
                                    std::exp((t - params_.deadline) / params_.tau2));
  return std::min(f, 1.0);
}

double BathtubDistribution::cdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t >= params_.horizon) return 1.0;
  return raw_cdf(t);
}

double BathtubDistribution::pdf(double t) const {
  if (t < 0.0 || t > params_.horizon) return 0.0;
  // Density vanishes once the raw CDF has saturated at 1 (clamped regime).
  if (raw_cdf(t) >= 1.0) return 0.0;
  return params_.scale * (std::exp(-t / params_.tau1) / params_.tau1 +
                          std::exp((t - params_.deadline) / params_.tau2) / params_.tau2);
}

double BathtubDistribution::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= raw_at_end_) return params_.horizon;
  // Invert the strictly increasing raw CDF by bisection.
  double lo = 0.0, hi = params_.horizon;
  for (int i = 0; i < 200 && hi - lo > 1e-14 * params_.horizon; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (raw_cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double BathtubDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  if (u >= raw_at_end_) return params_.horizon;  // deadline reclaim atom
  return quantile(u);
}

double BathtubDistribution::tf_antiderivative(double t) const {
  return params_.scale *
         (-(t + params_.tau1) * std::exp(-t / params_.tau1) +
          (t - params_.tau2) * std::exp((t - params_.deadline) / params_.tau2));
}

double BathtubDistribution::expected_lifetime_eq3() const {
  return tf_antiderivative(sat_) - tf_antiderivative(0.0);
}

double BathtubDistribution::mean() const {
  return expected_lifetime_eq3() + params_.horizon * atom_;
}

double BathtubDistribution::partial_expectation(double a, double b) const {
  const double lo = clamp(a, 0.0, sat_);
  const double hi = clamp(b, 0.0, sat_);
  if (hi <= lo) return 0.0;
  return tf_antiderivative(hi) - tf_antiderivative(lo);
}

}  // namespace preempt::dist
