#include "dist/bathtub.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/vkernel.hpp"

namespace preempt::dist {

namespace {
/// Grid resolution of the cached inverse-CDF table. 2048 cells over 24 h
/// keep the pre-refinement error below ~0.012 h; one or two Newton steps
/// then land within tolerance of the exact quantile.
constexpr std::size_t kQuantileCells = 2048;
/// Refinement tolerance in t (hours), relative to the horizon. Newton is
/// quadratic, so accepting a step of this size leaves a residual orders of
/// magnitude smaller — the CDF round-trip error stays below ~1e-10 while the
/// common case needs only two cdf/pdf evaluations.
constexpr double kQuantileTol = 5e-11;
/// Newton lane width for the batched inversion. Two exponentials per
/// draw-lane means one exp_many(32) per sweep — long enough to amortize
/// the dispatch call, short enough to stay register/stack resident.
constexpr std::size_t kLanes = 16;
/// sample_many works the uniform stream in blocks of this size: draw, split
/// atom/continuous lanes branchlessly, invert the continuous block.
constexpr std::size_t kBlock = 256;
}  // namespace

BathtubDistribution::BathtubDistribution(const BathtubParams& params) : params_(params) {
  PREEMPT_REQUIRE(std::isfinite(params.scale) && params.scale > 0.0 && params.scale <= 1.0,
                  "bathtub scale A must be in (0, 1]");
  PREEMPT_REQUIRE(std::isfinite(params.tau1) && params.tau1 > 0.0,
                  "bathtub tau1 must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.tau2) && params.tau2 > 0.0,
                  "bathtub tau2 must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.deadline) && params.deadline > 0.0,
                  "bathtub deadline must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.horizon) && params.horizon > 0.0,
                  "bathtub horizon must be positive");
  inv_tau1_ = 1.0 / params_.tau1;
  inv_tau2_ = 1.0 / params_.tau2;
  // Saturation point: fitted parameters may push the raw CDF to 1 before the
  // horizon (the clamped regime). The density vanishes there, so all moment
  // integrals must stop at t_sat or they would count phantom mass.
  sat_ = params_.horizon;
  const double unclamped_end =
      params_.scale * (1.0 - std::exp(-params_.horizon / params_.tau1) +
                       std::exp((params_.horizon - params_.deadline) / params_.tau2));
  if (unclamped_end > 1.0) {
    double lo = 0.0, hi = params_.horizon;
    for (int i = 0; i < 200 && hi - lo > 1e-14 * params_.horizon; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (raw_cdf(mid) < 1.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    sat_ = 0.5 * (lo + hi);
  }
  raw_at_end_ = raw_cdf(params_.horizon);
  atom_ = clamp01(1.0 - raw_at_end_);
  table_.emplace([this](double t) { return raw_cdf(t); }, 0.0, sat_, kQuantileCells,
                 /*p_atom=*/raw_at_end_, /*t_atom=*/params_.horizon);
}

double BathtubDistribution::raw_cdf(double t) const {
  // vk::exp with precomputed 1/τ so the table knots carry exactly the same
  // rounding as the Newton refinement's lane evaluation below.
  if (t <= 0.0) t = 0.0;
  const double f =
      params_.scale * (1.0 - vk::exp(-t * inv_tau1_) +
                       vk::exp((t - params_.deadline) * inv_tau2_));
  return std::min(f, 1.0);
}

double BathtubDistribution::cdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t >= params_.horizon) return 1.0;
  return raw_cdf(t);
}

double BathtubDistribution::pdf(double t) const {
  if (t < 0.0 || t > params_.horizon) return 0.0;
  // Density vanishes once the raw CDF has saturated at 1 (clamped regime).
  if (raw_cdf(t) >= 1.0) return 0.0;
  return params_.scale * (vk::exp(-t * inv_tau1_) * inv_tau1_ +
                          vk::exp((t - params_.deadline) * inv_tau2_) * inv_tau2_);
}

double BathtubDistribution::quantile_continuous(double p) const {
  // Eq. 1/2 share the two exponentials, so CDF and density come out of one
  // evaluation inside the Newton refinement. The arithmetic here is the
  // scalar twin of sample_many's lane evaluation — identical expressions on
  // vk::exp so single draws and batched draws share one rounding behaviour.
  const double scale = params_.scale;
  const double inv_tau1 = inv_tau1_;
  const double inv_tau2 = inv_tau2_;
  const double deadline = params_.deadline;
  return table_->invert(
      p,
      [=](double t) {
        const double e1 = vk::exp(-t * inv_tau1);
        const double e2 = vk::exp((t - deadline) * inv_tau2);
        return std::pair{scale * (1.0 - e1 + e2),
                         scale * (e1 * inv_tau1 + e2 * inv_tau2)};
      },
      kQuantileTol * params_.horizon);
}

double BathtubDistribution::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= raw_at_end_) return params_.horizon;
  return quantile_continuous(p);
}

void BathtubDistribution::eval_lanes(const double* t, double* cdf_out,
                                     double* pdf_out,
                                     std::size_t lanes) const {
  double x[2 * kLanes] = {};
  double e[2 * kLanes] = {};
  const double scale = params_.scale;
  const double inv_tau1 = inv_tau1_;
  const double inv_tau2 = inv_tau2_;
  const double deadline = params_.deadline;
  for (std::size_t j = 0; j < lanes; ++j) {
    x[j] = -t[j] * inv_tau1;
    x[lanes + j] = (t[j] - deadline) * inv_tau2;
  }
  vk::exp_many(x, e, 2 * lanes);
  for (std::size_t j = 0; j < lanes; ++j) {
    cdf_out[j] = scale * (1.0 - e[j] + e[lanes + j]);
    pdf_out[j] = scale * (e[j] * inv_tau1 + e[lanes + j] * inv_tau2);
  }
}

double BathtubDistribution::sample(Rng& rng) const {
  // Sampling inverts through the single-sweep polish (one batched CDF
  // evaluation per draw) rather than quantile()'s iterated refinement; the
  // residual is far below Monte-Carlo resolution, and sample_many shares
  // the same inverse so batched draws match this path bit for bit.
  const double u = rng.uniform();
  if (u >= raw_at_end_) return params_.horizon;  // deadline reclaim atom
  return table_->invert_fast(u, [this](const double* t, double* c, double* f,
                                       std::size_t lanes) {
    eval_lanes(t, c, f, lanes);
  });
}

void BathtubDistribution::sample_many(Rng& rng, std::span<double> out) const {
  // Blocked inverse-CDF sampling. Per block: draw the uniforms (same stream
  // order as the per-draw path), split deadline-atom lanes from continuous
  // lanes branchlessly, then run the lane-parallel Newton refinement with
  // one batched exp per sweep. Bit-identical to the per-draw loop: the
  // uniforms are consumed in the same order, atom draws map to the same
  // horizon constant, and invert_many's lanes replay invert() exactly.
  const double atom_start = raw_at_end_;
  const double horizon = params_.horizon;
  const auto lane_eval = [this](const double* t, double* cdf_out,
                                double* pdf_out, std::size_t lanes) {
    eval_lanes(t, cdf_out, pdf_out, lanes);
  };
  double u[kBlock];
  double pc[kBlock];
  double tc[kBlock];
  std::uint32_t idx[kBlock];
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, out.size() - base);
    for (std::size_t i = 0; i < n; ++i) u[i] = rng.uniform();
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {  // branchless atom/continuous split
      out[base + i] = horizon;
      idx[m] = static_cast<std::uint32_t>(i);
      pc[m] = u[i];
      m += u[i] < atom_start ? 1 : 0;
    }
    table_->invert_fast_many<kLanes>(pc, tc, m, lane_eval);
    for (std::size_t k = 0; k < m; ++k) out[base + idx[k]] = tc[k];
  }
}

double BathtubDistribution::tf_antiderivative(double t) const {
  return params_.scale *
         (-(t + params_.tau1) * std::exp(-t / params_.tau1) +
          (t - params_.tau2) * std::exp((t - params_.deadline) / params_.tau2));
}

double BathtubDistribution::expected_lifetime_eq3() const {
  return tf_antiderivative(sat_) - tf_antiderivative(0.0);
}

double BathtubDistribution::mean() const {
  return expected_lifetime_eq3() + params_.horizon * atom_;
}

double BathtubDistribution::partial_expectation(double a, double b) const {
  const double lo = clamp(a, 0.0, sat_);
  const double hi = clamp(b, 0.0, sat_);
  if (hi <= lo) return 0.0;
  return tf_antiderivative(hi) - tf_antiderivative(lo);
}

}  // namespace preempt::dist
