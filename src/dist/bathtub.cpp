#include "dist/bathtub.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt::dist {

namespace {
/// Grid resolution of the cached inverse-CDF table. 2048 cells over 24 h
/// keep the pre-refinement error below ~0.012 h; one or two Newton steps
/// then land within tolerance of the exact quantile.
constexpr std::size_t kQuantileCells = 2048;
/// Refinement tolerance in t (hours), relative to the horizon. Newton is
/// quadratic, so accepting a step of this size leaves a residual orders of
/// magnitude smaller — the CDF round-trip error stays below ~1e-10 while the
/// common case needs only two cdf/pdf evaluations.
constexpr double kQuantileTol = 5e-11;
}  // namespace

BathtubDistribution::BathtubDistribution(const BathtubParams& params) : params_(params) {
  PREEMPT_REQUIRE(std::isfinite(params.scale) && params.scale > 0.0 && params.scale <= 1.0,
                  "bathtub scale A must be in (0, 1]");
  PREEMPT_REQUIRE(std::isfinite(params.tau1) && params.tau1 > 0.0,
                  "bathtub tau1 must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.tau2) && params.tau2 > 0.0,
                  "bathtub tau2 must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.deadline) && params.deadline > 0.0,
                  "bathtub deadline must be positive");
  PREEMPT_REQUIRE(std::isfinite(params.horizon) && params.horizon > 0.0,
                  "bathtub horizon must be positive");
  // Saturation point: fitted parameters may push the raw CDF to 1 before the
  // horizon (the clamped regime). The density vanishes there, so all moment
  // integrals must stop at t_sat or they would count phantom mass.
  sat_ = params_.horizon;
  const double unclamped_end =
      params_.scale * (1.0 - std::exp(-params_.horizon / params_.tau1) +
                       std::exp((params_.horizon - params_.deadline) / params_.tau2));
  if (unclamped_end > 1.0) {
    double lo = 0.0, hi = params_.horizon;
    for (int i = 0; i < 200 && hi - lo > 1e-14 * params_.horizon; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (raw_cdf(mid) < 1.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    sat_ = 0.5 * (lo + hi);
  }
  raw_at_end_ = raw_cdf(params_.horizon);
  atom_ = clamp01(1.0 - raw_at_end_);
  table_.emplace([this](double t) { return raw_cdf(t); }, 0.0, sat_, kQuantileCells,
                 /*p_atom=*/raw_at_end_, /*t_atom=*/params_.horizon);
}

double BathtubDistribution::raw_cdf(double t) const {
  if (t <= 0.0) t = 0.0;
  const double f = params_.scale * (1.0 - std::exp(-t / params_.tau1) +
                                    std::exp((t - params_.deadline) / params_.tau2));
  return std::min(f, 1.0);
}

double BathtubDistribution::cdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t >= params_.horizon) return 1.0;
  return raw_cdf(t);
}

double BathtubDistribution::pdf(double t) const {
  if (t < 0.0 || t > params_.horizon) return 0.0;
  // Density vanishes once the raw CDF has saturated at 1 (clamped regime).
  if (raw_cdf(t) >= 1.0) return 0.0;
  return params_.scale * (std::exp(-t / params_.tau1) / params_.tau1 +
                          std::exp((t - params_.deadline) / params_.tau2) / params_.tau2);
}

double BathtubDistribution::quantile_continuous(double p) const {
  // Eq. 1/2 share the two exponentials, so CDF and density come out of one
  // evaluation inside the Newton refinement.
  const double scale = params_.scale;
  const double tau1 = params_.tau1;
  const double tau2 = params_.tau2;
  const double deadline = params_.deadline;
  return table_->invert(
      p,
      [=](double t) {
        const double e1 = std::exp(-t / tau1);
        const double e2 = std::exp((t - deadline) / tau2);
        return std::pair{scale * (1.0 - e1 + e2), scale * (e1 / tau1 + e2 / tau2)};
      },
      kQuantileTol * params_.horizon);
}

double BathtubDistribution::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= raw_at_end_) return params_.horizon;
  return quantile_continuous(p);
}

double BathtubDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  if (u >= raw_at_end_) return params_.horizon;  // deadline reclaim atom
  return quantile_continuous(u);
}

void BathtubDistribution::sample_many(Rng& rng, std::span<double> out) const {
  const double atom_start = raw_at_end_;
  const double horizon = params_.horizon;
  for (double& x : out) {
    const double u = rng.uniform();
    x = u >= atom_start ? horizon : quantile_continuous(u);
  }
}

double BathtubDistribution::tf_antiderivative(double t) const {
  return params_.scale *
         (-(t + params_.tau1) * std::exp(-t / params_.tau1) +
          (t - params_.tau2) * std::exp((t - params_.deadline) / params_.tau2));
}

double BathtubDistribution::expected_lifetime_eq3() const {
  return tf_antiderivative(sat_) - tf_antiderivative(0.0);
}

double BathtubDistribution::mean() const {
  return expected_lifetime_eq3() + params_.horizon * atom_;
}

double BathtubDistribution::partial_expectation(double a, double b) const {
  const double lo = clamp(a, 0.0, sat_);
  const double hi = clamp(b, 0.0, sat_);
  if (hi <= lo) return 0.0;
  return tf_antiderivative(hi) - tf_antiderivative(lo);
}

}  // namespace preempt::dist
