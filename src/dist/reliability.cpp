#include "dist/reliability.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/integrate.hpp"

namespace preempt::dist {

double mttf(const Distribution& d) { return d.mean(); }

double conditional_survival(const Distribution& d, double age_hours, double horizon_hours) {
  PREEMPT_REQUIRE(age_hours >= 0.0, "conditional survival needs age >= 0");
  PREEMPT_REQUIRE(horizon_hours >= 0.0, "conditional survival needs horizon >= 0");
  const double s_age = d.survival(age_hours);
  if (s_age <= 0.0) return 0.0;
  return std::min(1.0, d.survival(age_hours + horizon_hours) / s_age);
}

double conditional_failure(const Distribution& d, double age_hours, double horizon_hours) {
  return 1.0 - conditional_survival(d, age_hours, horizon_hours);
}

double mean_residual_life(const Distribution& d, double age_hours) {
  PREEMPT_REQUIRE(age_hours >= 0.0, "mean residual life needs age >= 0");
  const double s_age = d.survival(age_hours);
  if (s_age <= 0.0) return 0.0;
  double end = d.support_end();
  if (!std::isfinite(end)) {
    end = std::max(1.0, 2.0 * age_hours);
    int guard = 0;
    while (d.survival(end) > 1e-14 * s_age && guard++ < 1100) end *= 2.0;
  }
  if (end <= age_hours) return 0.0;
  const double integral = integrate_gauss_composite(
      [&d](double t) { return d.survival(t); }, age_hours, end, 96, 16);
  return integral / s_age;
}

double mttf_from_initial_rate(const Distribution& d) {
  const double h0 = d.hazard(0.0);
  PREEMPT_REQUIRE(h0 > 0.0, "initial failure rate is zero");
  return 1.0 / h0;
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kInfant:
      return "infant";
    case Phase::kStable:
      return "stable";
    case Phase::kDeadline:
      return "deadline";
  }
  return "unknown";
}

Phase classify_phase(const BathtubDistribution& d, double age_hours) {
  if (age_hours < d.infant_phase_end()) return Phase::kInfant;
  if (age_hours < d.deadline_phase_start()) return Phase::kStable;
  return Phase::kDeadline;
}

}  // namespace preempt::dist
