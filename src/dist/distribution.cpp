#include "dist/distribution.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/integrate.hpp"
#include "common/math.hpp"

namespace preempt::dist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double Distribution::hazard(double t) const {
  const double s = survival(t);
  const double f = pdf(t);
  if (s <= 0.0) return f > 0.0 ? kInf : 0.0;
  return f / s;
}

double Distribution::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  // Bracket: grow hi until cdf(hi) >= p (or we hit the support end).
  double lo = 0.0;
  double hi = std::isfinite(support_end()) ? support_end() : 1.0;
  if (!std::isfinite(support_end())) {
    int guard = 0;
    while (cdf(hi) < p && guard++ < 1100) hi *= 2.0;
    if (cdf(hi) < p) return kInf;
  }
  // Bisection to ~1 ulp of the bracket width.
  for (int i = 0; i < 200 && hi - lo > 1e-15 * std::max(1.0, hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

void Distribution::sample_many(Rng& rng, std::span<double> out) const {
  for (double& x : out) x = sample(rng);
}

double Distribution::mean() const {
  // E[T] = ∫_0^end S(t) dt for non-negative T; this absorbs any atom at the
  // support end since S stays positive up to it.
  double end = support_end();
  if (!std::isfinite(end)) {
    end = 1.0;
    int guard = 0;
    while (survival(end) > 1e-13 && guard++ < 1100) end *= 2.0;
  }
  if (end <= 0.0) return 0.0;
  return integrate_gauss_composite([this](double t) { return survival(t); }, 0.0, end, 96, 16);
}

double Distribution::partial_expectation(double a, double b) const {
  const double end = support_end();
  const double lo = clamp(a, 0.0, std::isfinite(end) ? end : std::max(a, 0.0));
  const double hi = std::isfinite(end) ? clamp(b, 0.0, end) : std::max(b, 0.0);
  if (hi <= lo) return 0.0;
  return integrate_gauss_composite([this](double t) { return t * pdf(t); }, lo, hi, 64, 16);
}

double Distribution::support_end() const { return kInf; }

}  // namespace preempt::dist
