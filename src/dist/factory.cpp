#include "dist/factory.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dist/bathtub.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "dist/exponentiated_weibull.hpp"
#include "dist/gamma.hpp"
#include "dist/gompertz_makeham.hpp"
#include "dist/lognormal.hpp"
#include "dist/piecewise.hpp"
#include "dist/truncated.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"

namespace preempt::dist {

namespace {

constexpr char kTruncatedSuffix[] = "-truncated";

std::string parameter_list(const FamilyInfo& info) {
  std::string out;
  for (const auto& p : info.parameters) {
    if (!out.empty()) out += ", ";
    out += p;
  }
  return out;
}

void require_count(const FamilyInfo& info, std::span<const double> params) {
  if (params.size() != info.parameters.size()) {
    throw InvalidArgument("family '" + info.name + "' expects " +
                          std::to_string(info.parameters.size()) + " parameters (" +
                          parameter_list(info) + "), got " + std::to_string(params.size()));
  }
}

DistributionPtr make_fixed_arity(const std::string& family, std::span<const double> p) {
  const FamilyInfo* info = nullptr;
  for (const auto& f : distribution_families()) {
    if (f.name == family) info = &f;
  }
  if (info == nullptr || info->parameters.empty() ||
      info->parameters.back() == "...") {
    return nullptr;  // not a fixed-arity family; caller handles
  }
  require_count(*info, p);
  if (family == "bathtub") {
    BathtubParams params;
    params.scale = p[0];
    params.tau1 = p[1];
    params.tau2 = p[2];
    params.deadline = p[3];
    params.horizon = p[4];
    return std::make_unique<BathtubDistribution>(params);
  }
  if (family == "exponential") return std::make_unique<Exponential>(p[0]);
  if (family == "weibull") return std::make_unique<Weibull>(p[0], p[1]);
  if (family == "gamma") return std::make_unique<Gamma>(p[0], p[1]);
  if (family == "lognormal") return std::make_unique<LogNormal>(p[0], p[1]);
  if (family == "uniform") return std::make_unique<UniformLifetime>(p[0]);
  if (family == "gompertz-makeham") {
    return std::make_unique<GompertzMakeham>(p[0], p[1], p[2]);
  }
  if (family == "exponentiated_weibull") {
    return std::make_unique<ExponentiatedWeibull>(p[0], p[1], p[2]);
  }
  return nullptr;
}

}  // namespace

const std::vector<FamilyInfo>& distribution_families() {
  static const std::vector<FamilyInfo> kFamilies = {
      {"bathtub", {"A", "tau1", "tau2", "b", "horizon"}},
      {"exponential", {"lambda"}},
      {"weibull", {"lambda", "k"}},
      {"gamma", {"alpha", "beta"}},
      {"lognormal", {"mu", "sigma"}},
      {"uniform", {"horizon"}},
      {"gompertz-makeham", {"lambda", "alpha", "beta"}},
      {"exponentiated_weibull", {"lambda", "k", "gamma"}},
      {"empirical", {"..."}},   // the samples themselves
      {"piecewise", {"..."}},   // knot times then knot CDF values
  };
  return kFamilies;
}

DistributionPtr make_distribution(const std::string& family, std::span<const double> params) {
  if (family.size() > sizeof(kTruncatedSuffix) &&
      family.ends_with(kTruncatedSuffix)) {
    if (params.empty()) {
      throw InvalidArgument("family '" + family +
                            "' expects the base parameters plus a trailing horizon");
    }
    const std::string base_name = family.substr(0, family.size() - sizeof(kTruncatedSuffix) + 1);
    DistributionPtr base = make_distribution(base_name, params.first(params.size() - 1));
    return std::make_unique<TruncatedDistribution>(std::move(base), params.back());
  }
  if (family == "empirical") {
    if (params.empty()) {
      throw InvalidArgument("family 'empirical' expects at least one sample parameter");
    }
    return std::make_unique<EmpiricalDistribution>(params);
  }
  if (family == "piecewise") {
    if (params.size() < 4 || params.size() % 2 != 0) {
      throw InvalidArgument(
          "family 'piecewise' expects an even number (>= 4) of parameters: the knot "
          "times followed by the knot CDF values");
    }
    const std::size_t n = params.size() / 2;
    std::vector<double> ts(params.begin(), params.begin() + static_cast<std::ptrdiff_t>(n));
    std::vector<double> fs(params.begin() + static_cast<std::ptrdiff_t>(n), params.end());
    return std::make_unique<PiecewiseLinearCdf>(std::move(ts), std::move(fs));
  }
  if (DistributionPtr made = make_fixed_arity(family, params)) return made;
  std::string known;
  for (const auto& f : distribution_families()) {
    if (!known.empty()) known += ", ";
    known += f.name;
  }
  throw InvalidArgument("unknown distribution family '" + family + "' (known: " + known +
                        "; any parametric family also accepts a '-truncated' suffix)");
}

}  // namespace preempt::dist
