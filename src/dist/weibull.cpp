#include "dist/weibull.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/vkernel.hpp"

namespace preempt::dist {

namespace {
/// Block width of the batched inverse transform in sample_many.
constexpr std::size_t kBlock = 256;
}  // namespace

Weibull::Weibull(double lambda, double k) : lambda_(lambda), k_(k) {
  PREEMPT_REQUIRE(std::isfinite(lambda) && lambda > 0.0, "weibull lambda must be positive");
  PREEMPT_REQUIRE(std::isfinite(k) && k > 0.0, "weibull shape must be positive");
}

double Weibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-std::pow(lambda_ * t, k_));
}

double Weibull::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) {
    if (k_ > 1.0) return 0.0;
    if (k_ == 1.0) return lambda_;
    return 0.0;  // density diverges; report 0 at the boundary point
  }
  const double x = lambda_ * t;
  return k_ * lambda_ * std::pow(x, k_ - 1.0) * std::exp(-std::pow(x, k_));
}

double Weibull::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-std::pow(lambda_ * t, k_));
}

double Weibull::hazard(double t) const {
  if (t <= 0.0) {
    if (k_ == 1.0) return lambda_;
    return k_ > 1.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return k_ * lambda_ * std::pow(lambda_ * t, k_ - 1.0);
}

double Weibull::quantile(double p) const {
  // x^{1/k} as exp(log(x)/k) on the vkernel — the same composition the
  // batched sampler uses, so quantile(u) ≡ a sample drawn at u bit for bit.
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  const double x = -vk::log1p(-p);
  return vk::exp((1.0 / k_) * vk::log(x)) / lambda_;
}

double Weibull::sample(Rng& rng) const { return quantile(rng.uniform()); }

void Weibull::sample_many(Rng& rng, std::span<double> out) const {
  // Blocked inverse transform, three kernel sweeps per block:
  // x = −log1p(−U), then exp(log(x)/k)/λ. Stream order and per-lane
  // arithmetic match quantile(uniform()) exactly; uniform() is
  // open-interval so the p <= 0 / p >= 1 branches cannot fire.
  const double inv_k = 1.0 / k_;
  double x[kBlock];
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, out.size() - base);
    for (std::size_t i = 0; i < n; ++i) x[i] = -rng.uniform();
    vk::log1p_many(x, x, n);
    for (std::size_t i = 0; i < n; ++i) x[i] = -x[i];
    vk::log_many(x, x, n);
    for (std::size_t i = 0; i < n; ++i) x[i] *= inv_k;
    vk::exp_many(x, x, n);
    for (std::size_t i = 0; i < n; ++i) out[base + i] = x[i] / lambda_;
  }
}

double Weibull::mean() const { return std::tgamma(1.0 + 1.0 / k_) / lambda_; }

}  // namespace preempt::dist
