#include "dist/weibull.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace preempt::dist {

Weibull::Weibull(double lambda, double k) : lambda_(lambda), k_(k) {
  PREEMPT_REQUIRE(std::isfinite(lambda) && lambda > 0.0, "weibull lambda must be positive");
  PREEMPT_REQUIRE(std::isfinite(k) && k > 0.0, "weibull shape must be positive");
}

double Weibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-std::pow(lambda_ * t, k_));
}

double Weibull::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) {
    if (k_ > 1.0) return 0.0;
    if (k_ == 1.0) return lambda_;
    return 0.0;  // density diverges; report 0 at the boundary point
  }
  const double x = lambda_ * t;
  return k_ * lambda_ * std::pow(x, k_ - 1.0) * std::exp(-std::pow(x, k_));
}

double Weibull::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-std::pow(lambda_ * t, k_));
}

double Weibull::hazard(double t) const {
  if (t <= 0.0) {
    if (k_ == 1.0) return lambda_;
    return k_ > 1.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return k_ * lambda_ * std::pow(lambda_ * t, k_ - 1.0);
}

double Weibull::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  return std::pow(-std::log1p(-p), 1.0 / k_) / lambda_;
}

double Weibull::sample(Rng& rng) const { return quantile(rng.uniform()); }

void Weibull::sample_many(Rng& rng, std::span<double> out) const {
  // Same transform as quantile(uniform()) with the shape reciprocal hoisted;
  // uniform() is open-interval so the p <= 0 / p >= 1 branches cannot fire.
  const double inv_k = 1.0 / k_;
  for (double& x : out) {
    x = std::pow(-std::log1p(-rng.uniform()), inv_k) / lambda_;
  }
}

double Weibull::mean() const { return std::tgamma(1.0 + 1.0 / k_) / lambda_; }

}  // namespace preempt::dist
