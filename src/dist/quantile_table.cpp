#include "dist/quantile_table.hpp"

#include "common/error.hpp"

namespace preempt::dist {

void QuantileTable::finish_build() {
  PREEMPT_REQUIRE(p_.size() >= 2, "quantile table needs at least one cell");
  PREEMPT_REQUIRE(dt_ > 0.0, "quantile table needs a positive time span");
  // Repair sub-ulp numerical dips so bracketing stays well defined.
  for (std::size_t i = 1; i < p_.size(); ++i) {
    if (p_[i] < p_[i - 1]) p_[i] = p_[i - 1];
  }
  const double span = p_.back() - p_.front();
  // 4 probability bins per grid cell: where the CDF is flat many knots
  // share one p-bin and the bracketing walk from the guide entry gets
  // long; oversampling the guide keeps the average walk near zero steps
  // for the cost of one extra uint32 array. Pure lookup acceleration —
  // the bracket a walk lands in is unchanged.
  const std::size_t bins = 4 * (p_.size() - 1);
  guide_.assign(bins, 0);
  if (span <= 0.0) return;  // fully flat CDF; lookups clamp to t_lo
  guide_scale_ = static_cast<double>(bins) / span;
  std::size_t knot = 0;
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const double bin_lo = p_.front() + static_cast<double>(bin) / guide_scale_;
    while (knot + 2 < p_.size() && p_[knot + 1] <= bin_lo) ++knot;
    guide_[bin] = static_cast<std::uint32_t>(knot);
  }
}

}  // namespace preempt::dist
