// The paper's constrained-preemption ("bathtub") model, Eqs. 1–3.
//
// Raw CDF (Eq. 1):  F(t) = A (1 − e^{−t/τ1} + e^{(t−b)/τ2}),  t ∈ [0, b]
// Density (Eq. 2):  f(t) = A (e^{−t/τ1}/τ1 + e^{(t−b)/τ2}/τ2)
// Expected lifetime (Eq. 3): closed-form ∫_0^b t f(t) dt.
//
// The infant-mortality term drains at rate 1/τ1, the deadline wall rises at
// rate 1/τ2 towards the enforced maximum lifetime b (24 h on GCP). Any mass
// the raw CDF has not absorbed by the horizon is a probability atom at the
// horizon — the provider reclaims every VM there ("deadline reclaim").
#pragma once

#include <optional>

#include "dist/distribution.hpp"
#include "dist/quantile_table.hpp"

namespace preempt::dist {

/// Parameters of Eq. 1. The paper reports A ≈ 0.2–0.5, τ1 ≈ 0.5–3 h,
/// τ2 ≈ 0.5–1 h for the regimes it measures; b is the 24 h deadline.
struct BathtubParams {
  double scale = 0.45;    ///< A, plateau height of the raw CDF, in (0, 1]
  double tau1 = 1.0;      ///< infant-phase time constant (hours)
  double tau2 = 0.8;      ///< deadline-wall time constant (hours)
  double deadline = 24.0; ///< b, wall location (hours)
  double horizon = 24.0;  ///< enforced maximum lifetime (hours)
};

class BathtubDistribution final : public Distribution {
 public:
  /// Validates: 0 < A <= 1, τ1 > 0, τ2 > 0, horizon > 0, deadline > 0.
  explicit BathtubDistribution(const BathtubParams& params);

  const BathtubParams& params() const noexcept { return params_; }

  /// Eq. 1 literal, un-clamped except into [0, 1]; no deadline atom.
  double raw_cdf(double t) const;

  /// Probability mass reclaimed exactly at the horizon: 1 − raw F(horizon).
  double deadline_atom() const noexcept { return atom_; }

  /// Eq. 3 closed form: ∫_0^horizon t f(t) dt (continuous part only).
  double expected_lifetime_eq3() const;

  /// Phase boundaries (Observation 1): infant phase ends at 3 τ1, the
  /// deadline phase starts when the wall term wakes up at b − 3 τ2.
  double infant_phase_end() const noexcept { return 3.0 * params_.tau1; }
  double deadline_phase_start() const noexcept { return params_.deadline - 3.0 * params_.tau2; }

  std::string name() const override { return "bathtub"; }
  std::vector<std::string> parameter_names() const override {
    return {"A", "tau1", "tau2", "b"};
  }
  std::vector<double> parameters() const override {
    return {params_.scale, params_.tau1, params_.tau2, params_.deadline};
  }
  DistributionPtr clone() const override {
    return std::make_unique<BathtubDistribution>(*this);
  }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  void sample_many(Rng& rng, std::span<double> out) const override;
  double mean() const override;
  double partial_expectation(double a, double b) const override;
  double support_end() const override { return params_.horizon; }

 private:
  /// Antiderivative of t f(t): A[−(t+τ1)e^{−t/τ1} + (t−τ2)e^{(t−b)/τ2}].
  double tf_antiderivative(double t) const;

  /// Invert the raw CDF for p in (0, raw_at_end_): table + Newton polish
  /// iterated to the quantile() accuracy contract.
  double quantile_continuous(double p) const;

  /// Eq. 1/2 CDF and density for a group of Newton lanes, the two
  /// exponentials batched into one vkernel call. Shared by sample() and
  /// sample_many() so single and batched draws are bit-identical.
  void eval_lanes(const double* t, double* cdf_out, double* pdf_out,
                  std::size_t lanes) const;

  BathtubParams params_;
  double inv_tau1_ = 0.0;   ///< 1/τ1; the hot eval multiplies, never divides
  double inv_tau2_ = 0.0;   ///< 1/τ2
  double atom_ = 0.0;       ///< 1 − raw_cdf(horizon), clamped to [0, 1]
  double raw_at_end_ = 0.0; ///< raw_cdf(horizon)
  double sat_ = 0.0;        ///< first t where the raw CDF saturates at 1
  /// Inverse raw CDF over [0, sat_]; replaces the old per-draw bisection.
  std::optional<QuantileTable> table_;
};

}  // namespace preempt::dist
