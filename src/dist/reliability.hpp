// Reliability-theory helpers over lifetime distributions: conditional
// survival, mean residual life, MTTF variants and the bathtub phase
// classification of Observation 1.
#pragma once

#include "dist/bathtub.hpp"
#include "dist/distribution.hpp"

namespace preempt::dist {

/// Mean time to failure, E[T] (atom included for constrained laws).
double mttf(const Distribution& d);

/// P(T > s + t | T > s). Zero when survival at s is already zero.
/// Throws InvalidArgument for s < 0 or t < 0.
double conditional_survival(const Distribution& d, double age_hours, double horizon_hours);

/// P(T <= s + t | T > s) = 1 − conditional_survival.
double conditional_failure(const Distribution& d, double age_hours, double horizon_hours);

/// Mean residual life MRL(s) = E[T − s | T > s] = ∫_s^end S(t) dt / S(s).
/// Throws InvalidArgument for s < 0; returns 0 once survival vanishes.
double mean_residual_life(const Distribution& d, double age_hours);

/// The Young–Daly MTTF substitute of Sec. 6.2.2: 1 / h(0), the inverse
/// initial failure rate.
double mttf_from_initial_rate(const Distribution& d);

/// Observation 1's three bathtub phases.
enum class Phase { kInfant, kStable, kDeadline };

/// Stable display names: "infant", "stable", "deadline".
const char* phase_name(Phase phase);

/// Classify a VM age against the model's phase boundaries.
Phase classify_phase(const BathtubDistribution& d, double age_hours);

}  // namespace preempt::dist
