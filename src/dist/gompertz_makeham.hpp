// Gompertz–Makeham lifetime: hazard h(t) = λ + α e^{βt} — a constant
// background rate plus exponential aging (Fig. 1 comparator).
#pragma once

#include "dist/distribution.hpp"
#include "dist/quantile_table.hpp"

namespace preempt::dist {

class GompertzMakeham final : public Distribution {
 public:
  /// λ >= 0 background rate, α > 0 aging amplitude, β > 0 aging speed.
  GompertzMakeham(double lambda, double alpha, double beta);

  double lambda() const noexcept { return lambda_; }
  double alpha() const noexcept { return alpha_; }
  double beta() const noexcept { return beta_; }

  std::string name() const override { return "gompertz-makeham"; }
  std::vector<std::string> parameter_names() const override {
    return {"lambda", "alpha", "beta"};
  }
  std::vector<double> parameters() const override { return {lambda_, alpha_, beta_}; }
  DistributionPtr clone() const override { return std::make_unique<GompertzMakeham>(*this); }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double survival(double t) const override;
  double hazard(double t) const override;
  /// Cached inverse-CDF table + Newton (Λ(t) has no closed-form inverse).
  double quantile(double p) const override;
  /// Single-sweep table inverse on the vkernel (see sample_many); draws
  /// beyond the table fall back to the bisection quantile.
  double sample(Rng& rng) const override;
  void sample_many(Rng& rng, std::span<double> out) const override;

 private:
  /// Cumulative hazard Λ(t) = λt + (α/β)(e^{βt} − 1).
  double cumulative_hazard(double t) const;

  /// F and f for a group of Newton lanes: em = expm1(βt) feeds both the
  /// survival exponent and the hazard, each batched through one vkernel
  /// call. Shared by sample() and sample_many() for bit-identity.
  void eval_lanes(const double* t, double* cdf_out, double* pdf_out,
                  std::size_t lanes) const;

  /// The lazily built table behind quantile()/sample_many.
  const QuantileTable& quantile_table() const;

  double lambda_;
  double alpha_;
  double beta_;
  LazyQuantileTable table_;
};

}  // namespace preempt::dist
