// Exponentiated Weibull, F(t) = [1 − exp(−(λt)^k)]^γ — the classical
// bathtub-capable family (paper ref [42]); k > 1 with kγ < 1 yields a
// decreasing-then-increasing hazard, but no deadline wall.
#pragma once

#include "dist/distribution.hpp"

namespace preempt::dist {

class ExponentiatedWeibull final : public Distribution {
 public:
  /// λ > 0, shape k > 0, exponent γ > 0.
  ExponentiatedWeibull(double lambda, double k, double gamma);

  double lambda() const noexcept { return lambda_; }
  double shape() const noexcept { return k_; }
  double gamma() const noexcept { return gamma_; }

  std::string name() const override { return "exponentiated_weibull"; }
  std::vector<std::string> parameter_names() const override { return {"lambda", "k", "gamma"}; }
  std::vector<double> parameters() const override { return {lambda_, k_, gamma_}; }
  DistributionPtr clone() const override {
    return std::make_unique<ExponentiatedWeibull>(*this);
  }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override { return quantile(rng.uniform()); }
  void sample_many(Rng& rng, std::span<double> out) const override {
    for (double& x : out) x = quantile(rng.uniform());
  }

 private:
  double lambda_;
  double k_;
  double gamma_;
};

}  // namespace preempt::dist
