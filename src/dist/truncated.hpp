// Right-truncation wrapper: condition any base lifetime law on T <= horizon.
// Used for Young–Daly-style baselines that must live in the same 24 h world
// as the constrained models.
#pragma once

#include "dist/distribution.hpp"

namespace preempt::dist {

class TruncatedDistribution final : public Distribution {
 public:
  /// Requires a non-null base with positive mass below `horizon` (> 0).
  TruncatedDistribution(DistributionPtr base, double horizon_hours);

  TruncatedDistribution(const TruncatedDistribution& other);
  TruncatedDistribution& operator=(const TruncatedDistribution& other);
  TruncatedDistribution(TruncatedDistribution&&) noexcept = default;
  TruncatedDistribution& operator=(TruncatedDistribution&&) noexcept = default;

  const Distribution& base() const noexcept { return *base_; }
  double horizon() const noexcept { return horizon_; }

  std::string name() const override { return base_->name() + "-truncated"; }
  std::vector<std::string> parameter_names() const override;
  std::vector<double> parameters() const override;
  DistributionPtr clone() const override {
    return std::make_unique<TruncatedDistribution>(*this);
  }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override { return quantile(rng.uniform()); }
  void sample_many(Rng& rng, std::span<double> out) const override;
  double partial_expectation(double a, double b) const override;
  double support_end() const override { return horizon_; }

 private:
  DistributionPtr base_;
  double horizon_;
  double mass_;  ///< base CDF at the horizon
};

}  // namespace preempt::dist
