// Uniform lifetime on [0, L] — the paper's Sec. 6.1 strawman comparator
// ("preemptions spread evenly over the 24 h window").
#pragma once

#include "dist/distribution.hpp"

namespace preempt::dist {

class UniformLifetime final : public Distribution {
 public:
  /// Lifetimes uniform on [0, horizon_hours], horizon > 0.
  explicit UniformLifetime(double horizon_hours);

  double horizon() const noexcept { return horizon_; }

  std::string name() const override { return "uniform"; }
  std::vector<std::string> parameter_names() const override { return {"horizon"}; }
  std::vector<double> parameters() const override { return {horizon_}; }
  DistributionPtr clone() const override { return std::make_unique<UniformLifetime>(*this); }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override { return rng.uniform(0.0, horizon_); }
  void sample_many(Rng& rng, std::span<double> out) const override {
    for (double& x : out) x = rng.uniform(0.0, horizon_);
  }
  double mean() const override { return 0.5 * horizon_; }
  double partial_expectation(double a, double b) const override;
  double support_end() const override { return horizon_; }

 private:
  double horizon_;
};

}  // namespace preempt::dist
