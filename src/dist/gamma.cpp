#include "dist/gamma.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/special.hpp"

namespace preempt::dist {

Gamma::Gamma(double shape, double rate) : shape_(shape), rate_(rate) {
  PREEMPT_REQUIRE(std::isfinite(shape) && shape > 0.0, "gamma shape must be positive");
  PREEMPT_REQUIRE(std::isfinite(rate) && rate > 0.0, "gamma rate must be positive");
}

double Gamma::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, rate_ * t);
}

double Gamma::pdf(double t) const {
  if (t < 0.0) return 0.0;
  if (t == 0.0) return shape_ == 1.0 ? rate_ : 0.0;
  return std::exp(shape_ * std::log(rate_) + (shape_ - 1.0) * std::log(t) - rate_ * t -
                  log_gamma(shape_));
}

double Gamma::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  // Table over [0, q(1 - 1e-9)]; rarer tail queries fall back to bisection.
  const QuantileTable& table = table_.get([this] {
    const double t_hi = Distribution::quantile(1.0 - 1e-9);
    return QuantileTable([this](double t) { return cdf(t); }, 0.0, t_hi, 1024);
  });
  if (p > table.p_hi()) return Distribution::quantile(p);
  const double tol = 1e-13 * std::max(1.0, table.t_hi());
  return table.invert(
      p, [this](double t) { return std::pair{cdf(t), pdf(t)}; }, tol);
}

double Gamma::draw(Rng& rng) const {
  // Marsaglia & Tsang (2000); the α < 1 case boosts via U^{1/α}.
  double alpha = shape_;
  double boost = 1.0;
  if (alpha < 1.0) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    boost = std::pow(u, 1.0 / alpha);
    alpha += 1.0;
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return boost * d * v / rate_;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v / rate_;
    }
  }
}

double Gamma::partial_expectation(double a, double b) const {
  // ∫_a^b t f(t) dt = (α/β) [P(α+1, βb) − P(α+1, βa)].
  const double lo = std::max(a, 0.0);
  if (b <= lo) return 0.0;
  return mean() * (regularized_gamma_p(shape_ + 1.0, rate_ * b) -
                   regularized_gamma_p(shape_ + 1.0, rate_ * lo));
}

}  // namespace preempt::dist
