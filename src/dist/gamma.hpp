// Gamma lifetime — comparator family for the extended Fig. 1 zoo.
#pragma once

#include "dist/distribution.hpp"
#include "dist/quantile_table.hpp"

namespace preempt::dist {

class Gamma final : public Distribution {
 public:
  /// Shape α > 0, rate β > 0 (per hour); mean is α/β.
  Gamma(double shape, double rate);

  double shape() const noexcept { return shape_; }
  double rate() const noexcept { return rate_; }

  std::string name() const override { return "gamma"; }
  std::vector<std::string> parameter_names() const override { return {"alpha", "beta"}; }
  std::vector<double> parameters() const override { return {shape_, rate_}; }
  DistributionPtr clone() const override { return std::make_unique<Gamma>(*this); }

  double cdf(double t) const override;
  double pdf(double t) const override;
  /// Cached inverse-CDF table + Newton (the base-class bisection would pay
  /// ~200 incomplete-gamma evaluations per call).
  double quantile(double p) const override;
  double sample(Rng& rng) const override { return draw(rng); }
  void sample_many(Rng& rng, std::span<double> out) const override {
    for (double& x : out) x = draw(rng);
  }
  double mean() const override { return shape_ / rate_; }
  double partial_expectation(double a, double b) const override;

 private:
  /// Marsaglia & Tsang rejection draw shared by sample/sample_many.
  double draw(Rng& rng) const;

  double shape_;
  double rate_;
  LazyQuantileTable table_;
};

}  // namespace preempt::dist
