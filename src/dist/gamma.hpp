// Gamma lifetime — comparator family for the extended Fig. 1 zoo.
#pragma once

#include "dist/distribution.hpp"

namespace preempt::dist {

class Gamma final : public Distribution {
 public:
  /// Shape α > 0, rate β > 0 (per hour); mean is α/β.
  Gamma(double shape, double rate);

  double shape() const noexcept { return shape_; }
  double rate() const noexcept { return rate_; }

  std::string name() const override { return "gamma"; }
  std::vector<std::string> parameter_names() const override { return {"alpha", "beta"}; }
  std::vector<double> parameters() const override { return {shape_, rate_}; }
  DistributionPtr clone() const override { return std::make_unique<Gamma>(*this); }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double sample(Rng& rng) const override;
  double mean() const override { return shape_ / rate_; }
  double partial_expectation(double a, double b) const override;

 private:
  double shape_;
  double rate_;
};

}  // namespace preempt::dist
