// Empirical distribution of observed lifetimes: step ECDF, plotting-position
// ECDF points for fitting, bootstrap sampling, histogram density and the
// Kolmogorov–Smirnov distance to a candidate model.
#pragma once

#include <span>
#include <utility>

#include "dist/distribution.hpp"

namespace preempt::dist {

/// Plotting-position convention for ECDF points fed to least-squares fitters.
enum class EcdfConvention {
  kHazen,  ///< F_i = (i + 0.5) / n — unbiased mid-rank positions
  kStep,   ///< F_i = (i + 1) / n — the right-continuous step heights
};

/// Sorted abscissae with matching ECDF ordinates.
struct EcdfPoints {
  std::vector<double> t;
  std::vector<double> f;
};

class EmpiricalDistribution final : public Distribution {
 public:
  /// Requires at least one sample; all samples finite and >= 0.
  explicit EmpiricalDistribution(std::span<const double> samples);
  explicit EmpiricalDistribution(const std::vector<double>& samples)
      : EmpiricalDistribution(std::span<const double>(samples)) {}

  std::size_t size() const noexcept { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

  /// ECDF points under the given plotting convention (sorted by t).
  EcdfPoints ecdf_points(EcdfConvention convention = EcdfConvention::kHazen) const;

  /// Equal-width histogram over [min, max]: (bin center, density) pairs,
  /// normalised so the densities integrate to 1.
  std::vector<std::pair<double, double>> histogram_density(std::size_t bins) const;

  /// Two-sided KS distance sup_t |F_n(t) − F_model(t)|, evaluated at jumps.
  double ks_distance(const Distribution& model) const;

  std::string name() const override { return "empirical"; }
  std::vector<std::string> parameter_names() const override { return {"n"}; }
  std::vector<double> parameters() const override {
    return {static_cast<double>(sorted_.size())};
  }
  DistributionPtr clone() const override {
    return std::make_unique<EmpiricalDistribution>(*this);
  }

  /// Right-continuous step ECDF: (# samples <= t) / n.
  double cdf(double t) const override;
  /// Histogram density (√n bins) — for plotting, not inference.
  double pdf(double t) const override;
  /// Linear-interpolation (type-7) sample quantile.
  double quantile(double p) const override;
  /// Inverse-transform draw via the type-7 quantile, so direct draws and
  /// quantile(uniform()) agree in distribution. (The old convention resampled
  /// raw order statistics, which disagreed with quantile(); bootstrap
  /// resampling lives in fit/bootstrap, not here.)
  double sample(Rng& rng) const override;
  void sample_many(Rng& rng, std::span<double> out) const override;
  double mean() const override { return mean_; }
  double partial_expectation(double a, double b) const override;
  double support_end() const override { return sorted_.back(); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

}  // namespace preempt::dist
