// Log-normal lifetime, ln T ~ N(μ, σ²) — comparator family (extended zoo).
#pragma once

#include "dist/distribution.hpp"

namespace preempt::dist {

class LogNormal final : public Distribution {
 public:
  /// μ finite, σ > 0.
  LogNormal(double mu, double sigma);

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

  std::string name() const override { return "lognormal"; }
  std::vector<std::string> parameter_names() const override { return {"mu", "sigma"}; }
  std::vector<double> parameters() const override { return {mu_, sigma_}; }
  DistributionPtr clone() const override { return std::make_unique<LogNormal>(*this); }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  void sample_many(Rng& rng, std::span<double> out) const override;
  double mean() const override;
  double partial_expectation(double a, double b) const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace preempt::dist
