#include "dist/piecewise.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/string_util.hpp"

namespace preempt::dist {

PiecewiseLinearCdf::PiecewiseLinearCdf(std::vector<double> ts, std::vector<double> fs)
    : ts_(std::move(ts)), fs_(std::move(fs)) {
  PREEMPT_REQUIRE(ts_.size() == fs_.size(), "piecewise CDF needs equal-length knot arrays");
  PREEMPT_REQUIRE(ts_.size() >= 2, "piecewise CDF needs at least two knots");
  for (std::size_t i = 0; i < ts_.size(); ++i) {
    PREEMPT_REQUIRE(std::isfinite(ts_[i]) && ts_[i] >= 0.0, "knot times must be >= 0");
    PREEMPT_REQUIRE(std::isfinite(fs_[i]) && fs_[i] >= 0.0 && fs_[i] <= 1.0,
                    "knot CDF values must be in [0, 1]");
    if (i > 0) {
      PREEMPT_REQUIRE(ts_[i] > ts_[i - 1], "knot times must be strictly increasing");
      PREEMPT_REQUIRE(fs_[i] >= fs_[i - 1], "knot CDF values must be non-decreasing");
    }
  }
  atom_ = 1.0 - fs_.back();
}

std::vector<std::string> PiecewiseLinearCdf::parameter_names() const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < ts_.size(); ++i) {
    names.push_back("t" + std::to_string(i));
    names.push_back("F" + std::to_string(i));
  }
  return names;
}

std::vector<double> PiecewiseLinearCdf::parameters() const {
  std::vector<double> values;
  for (std::size_t i = 0; i < ts_.size(); ++i) {
    values.push_back(ts_[i]);
    values.push_back(fs_[i]);
  }
  return values;
}

double PiecewiseLinearCdf::cdf(double t) const {
  if (t < ts_.front()) return 0.0;
  if (t >= ts_.back()) return 1.0;  // atom absorbed at the last knot
  const auto it = std::upper_bound(ts_.begin(), ts_.end(), t);
  const std::size_t i = static_cast<std::size_t>(it - ts_.begin());
  const double frac = (t - ts_[i - 1]) / (ts_[i] - ts_[i - 1]);
  return fs_[i - 1] + frac * (fs_[i] - fs_[i - 1]);
}

double PiecewiseLinearCdf::pdf(double t) const {
  if (t < ts_.front() || t >= ts_.back()) return 0.0;
  const auto it = std::upper_bound(ts_.begin(), ts_.end(), t);
  const std::size_t i = static_cast<std::size_t>(it - ts_.begin());
  return (fs_[i] - fs_[i - 1]) / (ts_[i] - ts_[i - 1]);
}

double PiecewiseLinearCdf::quantile(double p) const {
  if (p <= fs_.front()) return ts_.front();
  if (p >= fs_.back()) return ts_.back();
  const auto it = std::lower_bound(fs_.begin(), fs_.end(), p);
  std::size_t i = static_cast<std::size_t>(it - fs_.begin());
  // Skip flat segments so the division below is well defined.
  while (i > 0 && fs_[i] == fs_[i - 1]) --i;
  if (i == 0) return ts_.front();
  const double frac = (p - fs_[i - 1]) / (fs_[i] - fs_[i - 1]);
  return ts_[i - 1] + frac * (ts_[i] - ts_[i - 1]);
}

double PiecewiseLinearCdf::sample(Rng& rng) const {
  const double u = rng.uniform();
  if (u >= fs_.back()) return ts_.back();
  return quantile(u);
}

void PiecewiseLinearCdf::sample_many(Rng& rng, std::span<double> out) const {
  const double atom_start = fs_.back();
  for (double& x : out) {
    const double u = rng.uniform();
    x = u >= atom_start ? ts_.back() : quantile(u);
  }
}

double PiecewiseLinearCdf::mean() const {
  // fs.front() > 0 with ts.front() > 0 is an atom at the first knot (the CDF
  // jumps from 0 there); count it alongside the deadline atom.
  return fs_.front() * ts_.front() + partial_expectation(0.0, ts_.back()) + atom_ * ts_.back();
}

double PiecewiseLinearCdf::partial_expectation(double a, double b) const {
  const double lo = clamp(a, ts_.front(), ts_.back());
  const double hi = clamp(b, ts_.front(), ts_.back());
  if (hi <= lo) return 0.0;
  KahanSum sum;
  for (std::size_t i = 1; i < ts_.size(); ++i) {
    const double seg_lo = std::max(lo, ts_[i - 1]);
    const double seg_hi = std::min(hi, ts_[i]);
    if (seg_hi <= seg_lo) continue;
    const double slope = (fs_[i] - fs_[i - 1]) / (ts_[i] - ts_[i - 1]);
    sum.add(slope * 0.5 * (seg_hi * seg_hi - seg_lo * seg_lo));
  }
  return sum.value();
}

}  // namespace preempt::dist
