#include "dist/truncated.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt::dist {

TruncatedDistribution::TruncatedDistribution(DistributionPtr base, double horizon_hours)
    : base_(std::move(base)), horizon_(horizon_hours) {
  PREEMPT_REQUIRE(base_ != nullptr, "truncation needs a base distribution");
  PREEMPT_REQUIRE(std::isfinite(horizon_hours) && horizon_hours > 0.0,
                  "truncation horizon must be positive");
  mass_ = base_->cdf(horizon_);
  PREEMPT_REQUIRE(mass_ > 0.0, "base distribution has no mass below the horizon");
}

TruncatedDistribution::TruncatedDistribution(const TruncatedDistribution& other)
    : base_(other.base_->clone()), horizon_(other.horizon_), mass_(other.mass_) {}

TruncatedDistribution& TruncatedDistribution::operator=(const TruncatedDistribution& other) {
  if (this != &other) {
    base_ = other.base_->clone();
    horizon_ = other.horizon_;
    mass_ = other.mass_;
  }
  return *this;
}

std::vector<std::string> TruncatedDistribution::parameter_names() const {
  auto names = base_->parameter_names();
  names.push_back("horizon");
  return names;
}

std::vector<double> TruncatedDistribution::parameters() const {
  auto values = base_->parameters();
  values.push_back(horizon_);
  return values;
}

double TruncatedDistribution::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= horizon_) return 1.0;
  return clamp01(base_->cdf(t) / mass_);
}

double TruncatedDistribution::pdf(double t) const {
  if (t < 0.0 || t > horizon_) return 0.0;
  return base_->pdf(t) / mass_;
}

double TruncatedDistribution::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return horizon_;
  return std::min(base_->quantile(p * mass_), horizon_);
}

void TruncatedDistribution::sample_many(Rng& rng, std::span<double> out) const {
  // Same transform as quantile(uniform()); uniform() is open-interval so the
  // p <= 0 / p >= 1 branches cannot fire. The base quantile stays a virtual
  // call per draw, but any cached table inside the base is warm after the
  // first one.
  const Distribution& base = *base_;
  for (double& x : out) {
    x = std::min(base.quantile(rng.uniform() * mass_), horizon_);
  }
}

double TruncatedDistribution::partial_expectation(double a, double b) const {
  const double lo = clamp(a, 0.0, horizon_);
  const double hi = clamp(b, 0.0, horizon_);
  if (hi <= lo) return 0.0;
  return base_->partial_expectation(lo, hi) / mass_;
}

}  // namespace preempt::dist
