// Weibull lifetime, F(t) = 1 - exp(-(λt)^k) — the classical aging model the
// paper compares against (Fig. 1): k < 1 infant mortality, k > 1 wear-out.
#pragma once

#include "dist/distribution.hpp"

namespace preempt::dist {

class Weibull final : public Distribution {
 public:
  /// Rate-form parameterisation: λ > 0 (per hour), shape k > 0.
  Weibull(double lambda, double k);

  double lambda() const noexcept { return lambda_; }
  double shape() const noexcept { return k_; }

  std::string name() const override { return "weibull"; }
  std::vector<std::string> parameter_names() const override { return {"lambda", "k"}; }
  std::vector<double> parameters() const override { return {lambda_, k_}; }
  DistributionPtr clone() const override { return std::make_unique<Weibull>(*this); }

  double cdf(double t) const override;
  double pdf(double t) const override;
  double survival(double t) const override;
  double hazard(double t) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  void sample_many(Rng& rng, std::span<double> out) const override;
  double mean() const override;

 private:
  double lambda_;
  double k_;
};

}  // namespace preempt::dist
