#include "dist/exponentiated_weibull.hpp"

#include <cmath>

#include "common/error.hpp"

namespace preempt::dist {

ExponentiatedWeibull::ExponentiatedWeibull(double lambda, double k, double gamma)
    : lambda_(lambda), k_(k), gamma_(gamma) {
  PREEMPT_REQUIRE(std::isfinite(lambda) && lambda > 0.0,
                  "exponentiated-weibull lambda must be positive");
  PREEMPT_REQUIRE(std::isfinite(k) && k > 0.0, "exponentiated-weibull shape must be positive");
  PREEMPT_REQUIRE(std::isfinite(gamma) && gamma > 0.0,
                  "exponentiated-weibull exponent must be positive");
}

double ExponentiatedWeibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double base = -std::expm1(-std::pow(lambda_ * t, k_));
  return std::pow(base, gamma_);
}

double ExponentiatedWeibull::pdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double x = std::pow(lambda_ * t, k_);
  const double base = -std::expm1(-x);  // 1 - e^{-x}
  if (base <= 0.0) return 0.0;
  return gamma_ * k_ * lambda_ * std::pow(lambda_ * t, k_ - 1.0) * std::exp(-x) *
         std::pow(base, gamma_ - 1.0);
}

double ExponentiatedWeibull::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return support_end();
  const double base = std::pow(p, 1.0 / gamma_);
  return std::pow(-std::log1p(-base), 1.0 / k_) / lambda_;
}

}  // namespace preempt::dist
