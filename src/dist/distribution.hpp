// Lifetime distribution interface.
//
// Every law in the library models a non-negative random lifetime T (hours).
// Implementations provide the CDF/PDF pair; survival, hazard, quantile, mean
// and partial expectation have numerically robust defaults that subclasses
// override when a closed form exists. Distributions with a finite support may
// carry a probability atom at the support end (the 24 h deadline reclaim of
// preemptible VMs); cdf() includes the atom, pdf() does not.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.hpp"

namespace preempt::dist {

class Distribution;

/// Owning handle used across the policy / fitting / simulation layers.
using DistributionPtr = std::unique_ptr<Distribution>;

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Stable family identifier, e.g. "bathtub", "exponential".
  virtual std::string name() const = 0;

  /// Parameter labels and values, aligned index-wise.
  virtual std::vector<std::string> parameter_names() const = 0;
  virtual std::vector<double> parameters() const = 0;

  /// Deep copy.
  virtual DistributionPtr clone() const = 0;

  /// P(T <= t), including any atom at the support end. 0 for t < 0.
  virtual double cdf(double t) const = 0;

  /// Density of the continuous part; 0 outside the support.
  virtual double pdf(double t) const = 0;

  /// P(T > t) = 1 - cdf(t).
  virtual double survival(double t) const { return 1.0 - cdf(t); }

  /// Instantaneous failure rate pdf / survival; +inf where survival is zero
  /// but density remains, 0 where both vanish.
  virtual double hazard(double t) const;

  /// Smallest t with cdf(t) >= p. Default: bracketing bisection on cdf().
  /// Returns 0 for p <= 0 and support_end() for p >= 1.
  virtual double quantile(double p) const;

  /// Draw one variate. Default: inverse-transform via quantile().
  virtual double sample(Rng& rng) const { return quantile(rng.uniform()); }

  /// Fill `out` with independent draws. Contract: consumes the generator
  /// exactly as the equivalent sequence of sample() calls would, so batched
  /// and sequential draws are bit-for-bit identical streams. Family
  /// overrides hoist per-draw constants and virtual dispatch out of the
  /// loop; the Monte-Carlo engine (src/mc) builds on this.
  virtual void sample_many(Rng& rng, std::span<double> out) const;

  /// E[T], atom included. Default: integral of survival over the support.
  virtual double mean() const;

  /// Partial expectation of the continuous part, ∫_a^b t f(t) dt with the
  /// interval clamped to [0, support_end]. Atoms are excluded.
  virtual double partial_expectation(double a, double b) const;

  /// Upper end of the support; +inf for unbounded laws.
  virtual double support_end() const;
};

}  // namespace preempt::dist
