// Cached monotone inverse-CDF grid.
//
// Families without a closed-form quantile (the bathtub law, gamma,
// Gompertz–Makeham) otherwise fall back to ~200-step bracketing bisection on
// cdf() per draw, which dominates every Monte-Carlo hot path. A QuantileTable
// tabulates the CDF on a uniform time grid once, adds a guide index mapping
// uniform probability bins to grid cells (O(1) amortised lookup), and lets
// the owning family polish the interpolated value with a few safeguarded
// Newton steps against its exact cdf/pdf. A probability atom at the support
// end (the 24 h deadline reclaim) is handled explicitly: p >= p_atom maps
// straight to the atom location.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"

namespace preempt::dist {

class QuantileTable {
 public:
  /// Tabulate `cdf` on `cells`+1 equispaced knots over [t_lo, t_hi].
  /// Queries with p >= p_atom return t_atom (pass p_atom > 1 for no atom).
  /// cdf must be non-decreasing on the interval; small numerical dips are
  /// repaired by a monotone sweep.
  template <typename Cdf>
  QuantileTable(const Cdf& cdf, double t_lo, double t_hi, std::size_t cells,
                double p_atom = 2.0, double t_atom = 0.0)
      : t_lo_(t_lo),
        dt_((t_hi - t_lo) / static_cast<double>(cells)),
        p_atom_(p_atom),
        t_atom_(t_atom) {
    p_.resize(cells + 1);
    for (std::size_t i = 0; i <= cells; ++i) {
      p_[i] = cdf(t_lo_ + static_cast<double>(i) * dt_);
    }
    finish_build();
  }

  std::size_t cells() const noexcept { return p_.size() - 1; }
  double p_lo() const noexcept { return p_.front(); }
  double p_hi() const noexcept { return p_.back(); }
  double t_lo() const noexcept { return t_lo_; }
  double t_hi() const noexcept { return t_lo_ + dt_ * static_cast<double>(cells()); }

  /// Piecewise-linear inverse lookup. Clamps p into [p_lo, p_hi]; p >= p_atom
  /// returns the atom location. Error is bounded by one grid cell in t.
  double lookup(double p) const noexcept {
    if (p >= p_atom_) return t_atom_;
    const std::size_t i = bracket(p);
    return interpolate(p, i);
  }

  /// Lookup plus safeguarded Newton refinement against the exact CDF.
  /// `eval(t)` returns the {cdf, pdf} pair — one functor so families can
  /// share subexpressions (the bathtub CDF and density reuse the same two
  /// exponentials). The iterate is confined to the bracketing grid cell,
  /// falling back to bisection whenever Newton would escape it or the
  /// density vanishes, so the result is within `tol` (in t) of the true
  /// quantile.
  template <typename CdfPdf>
  double invert(double p, const CdfPdf& eval, double tol) const noexcept {
    if (p >= p_atom_) return t_atom_;
    if (p <= p_.front()) return t_lo_;
    if (p >= p_.back()) return t_hi();
    const std::size_t i = bracket(p);
    double lo = t_lo_ + static_cast<double>(i) * dt_;
    double hi = lo + dt_;
    double t = interpolate(p, i);
    for (int iter = 0; iter < 32 && hi - lo > tol; ++iter) {
      const auto [big_f, f] = eval(t);
      const double err = big_f - p;
      if (err < 0.0) {
        lo = t;
      } else {
        hi = t;
      }
      double next = f > 0.0 ? t - err / f : lo - 1.0;
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
      if (std::abs(next - t) <= tol) return next;
      t = next;
    }
    return t;
  }

 private:
  /// Index i with p_[i] <= p <= p_[i+1] (p assumed inside [p_lo, p_hi]).
  std::size_t bracket(double p) const noexcept {
    std::size_t i = guide_[guide_bin(p)];
    const std::size_t last = p_.size() - 2;
    while (i < last && p_[i + 1] < p) ++i;
    return i;
  }

  std::size_t guide_bin(double p) const noexcept {
    const double x = (p - p_.front()) * guide_scale_;
    const auto bin = x <= 0.0 ? std::size_t{0} : static_cast<std::size_t>(x);
    return std::min(bin, guide_.size() - 1);
  }

  double interpolate(double p, std::size_t i) const noexcept {
    const double lo = t_lo_ + static_cast<double>(i) * dt_;
    const double dp = p_[i + 1] - p_[i];
    if (dp <= 0.0) return lo;  // flat cell (saturated CDF)
    return lo + dt_ * std::clamp((p - p_[i]) / dp, 0.0, 1.0);
  }

  void finish_build();

  double t_lo_;
  double dt_;
  double p_atom_;
  double t_atom_;
  std::vector<double> p_;               ///< CDF at knot i
  std::vector<std::uint32_t> guide_;    ///< uniform p-bin -> first knot index
  double guide_scale_ = 0.0;            ///< bins / (p_hi - p_lo)
};

/// Thread-safe lazily built table. Reads after the first build are
/// lock-free (atomic shared_ptr load), so per-draw quantile calls from
/// pool workers do not serialize on a mutex. Copying a distribution drops
/// the cache (the copy rebuilds on first use), which keeps every family's
/// implicit copy/clone semantics intact.
class LazyQuantileTable {
 public:
  LazyQuantileTable() = default;
  LazyQuantileTable(const LazyQuantileTable&) noexcept {}
  LazyQuantileTable& operator=(const LazyQuantileTable&) noexcept { return *this; }

  /// Returns the cached table, building it with `build()` on first use.
  /// The reference stays valid for the lifetime of this object (the cache
  /// is never reset once built).
  template <typename Build>
  const QuantileTable& get(const Build& build) const {
    if (auto t = table_.load(std::memory_order_acquire)) return *t;
    const LockGuard lock(mutex_);
    if (auto t = table_.load(std::memory_order_relaxed)) return *t;
    auto built = std::make_shared<const QuantileTable>(build());
    table_.store(built, std::memory_order_release);
    return *built;
  }

 private:
  mutable Mutex mutex_{"dist.quantile_table.build"};  ///< serialises the one-time build only
  mutable std::atomic<std::shared_ptr<const QuantileTable>> table_{nullptr};
};

}  // namespace preempt::dist
