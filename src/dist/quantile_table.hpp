// Cached monotone inverse-CDF grid.
//
// Families without a closed-form quantile (the bathtub law, gamma,
// Gompertz–Makeham) otherwise fall back to ~200-step bracketing bisection on
// cdf() per draw, which dominates every Monte-Carlo hot path. A QuantileTable
// tabulates the CDF on a uniform time grid once, adds a guide index mapping
// uniform probability bins to grid cells (O(1) amortised lookup), and lets
// the owning family polish the interpolated value with a few safeguarded
// Newton steps against its exact cdf/pdf. A probability atom at the support
// end (the 24 h deadline reclaim) is handled explicitly: p >= p_atom maps
// straight to the atom location.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"

namespace preempt::dist {

class QuantileTable {
 public:
  /// Tabulate `cdf` on `cells`+1 equispaced knots over [t_lo, t_hi].
  /// Queries with p >= p_atom return t_atom (pass p_atom > 1 for no atom).
  /// cdf must be non-decreasing on the interval; small numerical dips are
  /// repaired by a monotone sweep.
  template <typename Cdf>
  QuantileTable(const Cdf& cdf, double t_lo, double t_hi, std::size_t cells,
                double p_atom = 2.0, double t_atom = 0.0)
      : t_lo_(t_lo),
        dt_((t_hi - t_lo) / static_cast<double>(cells)),
        p_atom_(p_atom),
        t_atom_(t_atom) {
    p_.resize(cells + 1);
    for (std::size_t i = 0; i <= cells; ++i) {
      p_[i] = cdf(t_lo_ + static_cast<double>(i) * dt_);
    }
    finish_build();
  }

  std::size_t cells() const noexcept { return p_.size() - 1; }
  double p_lo() const noexcept { return p_.front(); }
  double p_hi() const noexcept { return p_.back(); }
  double t_lo() const noexcept { return t_lo_; }
  double t_hi() const noexcept { return t_lo_ + dt_ * static_cast<double>(cells()); }

  /// Piecewise-linear inverse lookup. Clamps p into [p_lo, p_hi]; p >= p_atom
  /// returns the atom location. Error is bounded by one grid cell in t.
  double lookup(double p) const noexcept {
    if (p >= p_atom_) return t_atom_;
    const std::size_t i = bracket(p);
    return interpolate(p, i);
  }

  /// Lookup plus safeguarded Newton refinement against the exact CDF.
  /// `eval(t)` returns the {cdf, pdf} pair — one functor so families can
  /// share subexpressions (the bathtub CDF and density reuse the same two
  /// exponentials). The iterate is confined to the bracketing grid cell,
  /// falling back to bisection whenever Newton would escape it or the
  /// density vanishes, so the result is within `tol` (in t) of the true
  /// quantile.
  template <typename CdfPdf>
  double invert(double p, const CdfPdf& eval, double tol) const noexcept {
    if (p >= p_atom_) return t_atom_;
    if (p <= p_.front()) return t_lo_;
    if (p >= p_.back()) return t_hi();
    const std::size_t i = bracket(p);
    double lo = t_lo_ + static_cast<double>(i) * dt_;
    double hi = lo + dt_;
    double t = interpolate(p, i);
    for (int iter = 0; iter < 32 && hi - lo > tol; ++iter) {
      const auto [big_f, f] = eval(t);
      const double err = big_f - p;
      if (err < 0.0) {
        lo = t;
      } else {
        hi = t;
      }
      double next = f > 0.0 ? t - err / f : lo - 1.0;
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
      if (std::abs(next - t) <= tol) return next;
      t = next;
    }
    return t;
  }

  /// Single-sweep inversion for the sampling paths: interpolate, then one
  /// guarded Newton polish — exactly one eval per draw, no convergence
  /// loop. The step is confined to the bracketing cell (a step that would
  /// escape keeps the interpolant), so the error is bounded by one grid
  /// cell in the worst (vanishing-density) case and is quadratically small
  /// — far below any Monte-Carlo resolution — everywhere else. quantile()
  /// keeps the iterated invert() and its tighter tolerance; sample() and
  /// sample_many() share this cheaper inverse so their draws stay
  /// bit-identical to each other.
  template <typename CdfPdf>
  double invert_fast(double p, const CdfPdf& eval) const noexcept {
    if (p >= p_atom_) return t_atom_;
    if (p <= p_.front()) return t_lo_;
    if (p >= p_.back()) return t_hi();
    const std::size_t i = bracket(p);
    const double lo = t_lo_ + static_cast<double>(i) * dt_;
    const double hi = lo + dt_;
    const double t = interpolate(p, i);
    double cdf_t, pdf_t;
    eval(&t, &cdf_t, &pdf_t, 1);
    const double next =
        bit_select(pdf_t > 0.0, t - (cdf_t - p) / pdf_t, t);
    return bit_select(next > lo && next < hi, next, t);
  }

  /// Batched invert_fast(): one eval_lanes sweep per group of `Lanes`
  /// draws, then the branch-free guarded Newton polish per lane. The lane
  /// arithmetic is identical to invert_fast() — eval_lanes sees the same
  /// t values in lanes, padding lanes run at t_lo and are discarded — so
  /// invert_fast_many(p, out, n) ≡ { for i: out[i] = invert_fast(p[i]) }
  /// bit for bit.
  template <std::size_t Lanes, typename LaneEval>
  void invert_fast_many(const double* p, double* out, std::size_t n,
                        const LaneEval& eval_lanes) const noexcept {
    static_assert(Lanes >= 1);
    double pr[Lanes], t[Lanes], lo[Lanes], hi[Lanes];
    double cdf_v[Lanes], pdf_v[Lanes];
    for (std::size_t base = 0; base < n; base += Lanes) {
      const std::size_t m = std::min(Lanes, n - base);
      for (std::size_t j = m; j < Lanes; ++j) {  // benign padding lanes
        pr[j] = 0.0;
        t[j] = t_lo_;
        lo[j] = t_lo_;
        hi[j] = t_lo_;
      }
      for (std::size_t j = 0; j < m; ++j) {
        const double pj = p[base + j];
        if (pj >= p_atom_) {
          t[j] = t_atom_;
          lo[j] = hi[j] = t[j];  // lo == hi: the polish below keeps t
        } else if (pj <= p_.front()) {
          t[j] = t_lo_;
          lo[j] = hi[j] = t[j];
        } else if (pj >= p_.back()) {
          t[j] = t_hi();
          lo[j] = hi[j] = t[j];
        } else {
          const std::size_t i = bracket(pj);
          lo[j] = t_lo_ + static_cast<double>(i) * dt_;
          hi[j] = lo[j] + dt_;
          t[j] = interpolate(pj, i);
        }
        pr[j] = pj;
      }
      eval_lanes(t, cdf_v, pdf_v, Lanes);
      for (std::size_t j = 0; j < m; ++j) {
        const double next = bit_select(
            pdf_v[j] > 0.0, t[j] - (cdf_v[j] - pr[j]) / pdf_v[j], t[j]);
        out[base + j] = bit_select(next > lo[j] && next < hi[j], next, t[j]);
      }
    }
  }

  /// Batched invert(): inverts p[0..n) with the Newton refinement run
  /// lane-parallel in groups of `Lanes`, so the owning family can batch its
  /// transcendental evaluations (one vkernel *_many call per sweep instead
  /// of per draw). `eval_lanes(t, cdf_out, pdf_out, Lanes)` must fill
  /// cdf_out[j]/pdf_out[j] for every lane with *the same operation sequence
  /// per lane* as the scalar `eval` passed to invert(); the per-lane control
  /// flow here mirrors invert() step for step, which makes
  /// invert_many(p, out, n) ≡ { for i: out[i] = invert(p[i], eval, tol) }
  /// bit for bit. Finished lanes keep being evaluated at their final t (the
  /// call shape stays fixed at `Lanes`); their outputs are already latched.
  template <std::size_t Lanes, typename LaneEval>
  void invert_many(const double* p, double* out, std::size_t n,
                   const LaneEval& eval_lanes, double tol) const noexcept {
    static_assert(Lanes >= 1);
    for (std::size_t base = 0; base < n; base += Lanes) {
      const std::size_t m = std::min(Lanes, n - base);
      double pr[Lanes], t[Lanes], lo[Lanes], hi[Lanes];
      double cdf_v[Lanes], pdf_v[Lanes];
      bool done[Lanes];
      for (std::size_t j = 0; j < Lanes; ++j) {
        // Padding lanes (and clamp/atom hits) stay parked at benign state:
        // done, with t already holding their final value.
        pr[j] = 0.0;
        t[j] = t_lo_;
        lo[j] = t_lo_;
        hi[j] = t_lo_;
        done[j] = true;
      }
      for (std::size_t j = 0; j < m; ++j) {
        const double pj = p[base + j];
        if (pj >= p_atom_) {
          t[j] = t_atom_;
        } else if (pj <= p_.front()) {
          t[j] = t_lo_;
        } else if (pj >= p_.back()) {
          t[j] = t_hi();
        } else {
          const std::size_t i = bracket(pj);
          pr[j] = pj;
          lo[j] = t_lo_ + static_cast<double>(i) * dt_;
          hi[j] = lo[j] + dt_;
          t[j] = interpolate(pj, i);
          done[j] = false;
        }
      }
      // The refinement sweep is branch-free per lane (selects, not jumps):
      // the bisection direction err < 0 is a coin flip per draw, and a
      // mispredicted jump per lane per sweep would cost more than the two
      // exponentials the evaluation itself spends. Finished lanes keep
      // being evaluated at their frozen t; every update is masked by done.
      for (int iter = 0; iter < 32; ++iter) {
        bool all_done = true;
        for (std::size_t j = 0; j < Lanes; ++j) {
          // Mirrors invert()'s loop condition: stop with the current t.
          done[j] = done[j] || !(hi[j] - lo[j] > tol);
          all_done = all_done && done[j];
        }
        if (all_done) break;
        eval_lanes(t, cdf_v, pdf_v, Lanes);
        for (std::size_t j = 0; j < Lanes; ++j) {
          const double err = cdf_v[j] - pr[j];
          const bool neg = err < 0.0;
          const double nlo = bit_select(neg, t[j], lo[j]);
          const double nhi = bit_select(neg, hi[j], t[j]);
          double next = bit_select(pdf_v[j] > 0.0, t[j] - err / pdf_v[j],
                                   nlo - 1.0);
          next = bit_select(next > nlo && next < nhi, next, 0.5 * (nlo + nhi));
          const bool accept = std::abs(next - t[j]) <= tol;
          const bool d = done[j];
          lo[j] = bit_select(d, lo[j], nlo);
          hi[j] = bit_select(d, hi[j], nhi);
          t[j] = bit_select(d, t[j], next);
          done[j] = d || accept;
        }
      }
      for (std::size_t j = 0; j < m; ++j) out[base + j] = t[j];
    }
  }

 private:
  /// c ? a : b as a bitwise merge — exact (returns a or b verbatim) and
  /// guaranteed branch-free. The refinement sweep's bisection direction is
  /// a coin flip per draw; a compiler that lowered those ternaries to jumps
  /// would pay a misprediction per lane per sweep.
  static double bit_select(bool c, double a, double b) noexcept {
    const auto mask = c ? ~std::uint64_t{0} : std::uint64_t{0};
    return std::bit_cast<double>((std::bit_cast<std::uint64_t>(a) & mask) |
                                 (std::bit_cast<std::uint64_t>(b) & ~mask));
  }

  /// Index i with p_[i] <= p <= p_[i+1] (p assumed inside [p_lo, p_hi]).
  std::size_t bracket(double p) const noexcept {
    std::size_t i = guide_[guide_bin(p)];
    const std::size_t last = p_.size() - 2;
    while (i < last && p_[i + 1] < p) ++i;
    return i;
  }

  std::size_t guide_bin(double p) const noexcept {
    const double x = (p - p_.front()) * guide_scale_;
    const auto bin = x <= 0.0 ? std::size_t{0} : static_cast<std::size_t>(x);
    return std::min(bin, guide_.size() - 1);
  }

  double interpolate(double p, std::size_t i) const noexcept {
    const double lo = t_lo_ + static_cast<double>(i) * dt_;
    const double dp = p_[i + 1] - p_[i];
    if (dp <= 0.0) return lo;  // flat cell (saturated CDF)
    return lo + dt_ * std::clamp((p - p_[i]) / dp, 0.0, 1.0);
  }

  void finish_build();

  double t_lo_;
  double dt_;
  double p_atom_;
  double t_atom_;
  std::vector<double> p_;               ///< CDF at knot i
  std::vector<std::uint32_t> guide_;    ///< uniform p-bin -> first knot index
  double guide_scale_ = 0.0;            ///< bins / (p_hi - p_lo)
};

/// Thread-safe lazily built table. Reads after the first build are
/// lock-free (atomic shared_ptr load), so per-draw quantile calls from
/// pool workers do not serialize on a mutex. Copying a distribution drops
/// the cache (the copy rebuilds on first use), which keeps every family's
/// implicit copy/clone semantics intact.
class LazyQuantileTable {
 public:
  LazyQuantileTable() = default;
  LazyQuantileTable(const LazyQuantileTable&) noexcept {}
  LazyQuantileTable& operator=(const LazyQuantileTable&) noexcept { return *this; }

  /// Returns the cached table, building it with `build()` on first use.
  /// The reference stays valid for the lifetime of this object (the cache
  /// is never reset once built).
  template <typename Build>
  const QuantileTable& get(const Build& build) const {
    if (auto t = table_.load(std::memory_order_acquire)) return *t;
    const LockGuard lock(mutex_);
    if (auto t = table_.load(std::memory_order_relaxed)) return *t;
    auto built = std::make_shared<const QuantileTable>(build());
    table_.store(built, std::memory_order_release);
    return *built;
  }

 private:
  mutable Mutex mutex_{"dist.quantile_table.build"};  ///< serialises the one-time build only
  mutable std::atomic<std::shared_ptr<const QuantileTable>> table_{nullptr};
};

}  // namespace preempt::dist
