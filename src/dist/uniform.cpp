#include "dist/uniform.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt::dist {

UniformLifetime::UniformLifetime(double horizon_hours) : horizon_(horizon_hours) {
  PREEMPT_REQUIRE(std::isfinite(horizon_hours) && horizon_hours > 0.0,
                  "uniform horizon must be positive");
}

double UniformLifetime::cdf(double t) const { return clamp01(t / horizon_); }

double UniformLifetime::pdf(double t) const {
  if (t < 0.0 || t > horizon_) return 0.0;
  return 1.0 / horizon_;
}

double UniformLifetime::quantile(double p) const { return clamp01(p) * horizon_; }

double UniformLifetime::partial_expectation(double a, double b) const {
  const double lo = clamp(a, 0.0, horizon_);
  const double hi = clamp(b, 0.0, horizon_);
  if (hi <= lo) return 0.0;
  return (hi * hi - lo * lo) / (2.0 * horizon_);
}

}  // namespace preempt::dist
