#include "common/root_find.hpp"

#include <cmath>

#include "common/error.hpp"

namespace preempt {

double bisect(const std::function<double(double)>& f, double a, double b, SolverOptions opts) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  PREEMPT_REQUIRE(fa * fb < 0.0, "bisect requires a sign change on [a, b]");
  for (int i = 0; i < opts.max_iterations && (b - a) > opts.x_tol; ++i) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    if (fm == 0.0) return m;
    if (fa * fm < 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  return 0.5 * (a + b);
}

double brent(const std::function<double(double)>& f, double a, double b, SolverOptions opts) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  PREEMPT_REQUIRE(fa * fb < 0.0, "brent requires a sign change on [a, b]");
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) + 0.5 * opts.x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0) return b;
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic / secant interpolation.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return b;
}

double golden_section_minimize(const std::function<double(double)>& f, double a, double b,
                               SolverOptions opts) {
  PREEMPT_REQUIRE(a < b, "golden section requires a < b");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < opts.max_iterations && (b - a) > opts.x_tol; ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace preempt
