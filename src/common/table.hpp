// Aligned text tables: the output format of every bench harness.
//
// Benches print the same rows/series the paper's figures plot, so the table
// writer is part of the reproduction contract (stable, diff-able output).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace preempt {

/// A column-aligned text table with an optional title, printable to any
/// ostream and exportable as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header, std::string title = {});

  /// Append a preformatted row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a row of doubles with fixed precision.
  /// (Named distinctly from add_row: a braced string list would otherwise be
  /// ambiguous with vector<double>'s iterator-pair constructor.)
  void add_numeric_row(const std::vector<double>& values, int precision = 4);

  std::size_t row_count() const noexcept { return rows_.size(); }
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept { return rows_; }

  /// Pretty-print with aligned columns.
  void print(std::ostream& os) const;

  /// Comma-separated export (no quoting of fields; callers keep fields clean).
  std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace preempt
