// Scalar root finding and 1-D minimisation.
#pragma once

#include <functional>

namespace preempt {

/// Options shared by the scalar solvers.
struct SolverOptions {
  double x_tol = 1e-12;   ///< terminate when the bracket is this small
  int max_iterations = 200;
};

/// Find x in [a, b] with f(x) = 0 by bisection. Requires f(a) and f(b) to
/// have opposite signs (or one of them to be an exact root).
double bisect(const std::function<double(double)>& f, double a, double b,
              SolverOptions opts = {});

/// Brent's method: bisection safety with inverse-quadratic speed.
/// Same bracketing requirement as bisect().
double brent(const std::function<double(double)>& f, double a, double b, SolverOptions opts = {});

/// Golden-section minimisation of a unimodal f over [a, b]; returns argmin.
double golden_section_minimize(const std::function<double(double)>& f, double a, double b,
                               SolverOptions opts = {});

}  // namespace preempt
