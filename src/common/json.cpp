#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace preempt {

bool JsonValue::as_bool() const {
  PREEMPT_REQUIRE(is_bool(), "json value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  PREEMPT_REQUIRE(is_number(), "json value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  PREEMPT_REQUIRE(is_string(), "json value is not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  PREEMPT_REQUIRE(is_array(), "json value is not an array");
  return array_;
}

const JsonObject& JsonValue::as_object() const {
  PREEMPT_REQUIRE(is_object(), "json value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v && v->is_number() ? v->number_ : fallback;
}

std::string JsonValue::string_or(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v && v->is_string() ? v->string_ : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v && v->is_bool() ? v->bool_ : fallback;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; emit null like JavaScript
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 1e15) {  // integral: no trailing .0
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                                              (static_cast<std::size_t>(depth) + 1),
                                                          ' ')
                                     : "";
  const std::string pad_close =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth),
                                      ' ')
                 : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: number_into(out, number_); break;
    case Kind::kString: escape_into(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
      }
      out += pad_close;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        out += pad;
        escape_into(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      out += pad_close;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ------------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue(nullptr);
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode the BMP code point as UTF-8 (surrogate pairs are passed
            // through as two 3-byte sequences — adequate for API payloads).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' ||
                                   text_[pos_] == 'E' || text_[pos_] == '+' ||
                                   text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      return JsonValue(v);
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace preempt
