#include "common/table.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace preempt {

Table::Table(std::vector<std::string> header, std::string title)
    : title_(std::move(title)), header_(std::move(header)) {
  PREEMPT_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  PREEMPT_REQUIRE(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

void Table::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(fmt_double(v, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_csv() const {
  std::string out = join(header_, ",") + "\n";
  for (const auto& row : rows_) out += join(row, ",") + "\n";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  table.print(os);
  return os;
}

}  // namespace preempt
