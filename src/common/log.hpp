// Leveled logging to stderr. Benchmarks and examples keep stdout clean for
// data tables; diagnostics go through here.
#pragma once

#include <sstream>
#include <string>

namespace preempt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level (default kWarn so library users are not spammed).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit a message if `level` >= the global level. Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace preempt

#define PREEMPT_LOG_DEBUG ::preempt::detail::LogLine(::preempt::LogLevel::kDebug)
#define PREEMPT_LOG_INFO ::preempt::detail::LogLine(::preempt::LogLevel::kInfo)
#define PREEMPT_LOG_WARN ::preempt::detail::LogLine(::preempt::LogLevel::kWarn)
#define PREEMPT_LOG_ERROR ::preempt::detail::LogLine(::preempt::LogLevel::kError)
