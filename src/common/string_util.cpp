#include "common/string_util.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace preempt {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_general(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

double parse_double(std::string_view s) {
  const std::string t = trim(s);
  if (t.empty()) throw IoError("parse_double: empty field");
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) throw IoError("parse_double: invalid number '" + t + "'");
  return v;
}

long long parse_int(std::string_view s) {
  const std::string t = trim(s);
  if (t.empty()) throw IoError("parse_int: empty field");
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size()) throw IoError("parse_int: invalid integer '" + t + "'");
  return v;
}

}  // namespace preempt
