// String helpers for parsing and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace preempt {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Fixed-precision decimal formatting ("%.{prec}f").
std::string fmt_double(double value, int precision = 4);

/// Compact significant-digit formatting ("%.{digits}g").
std::string fmt_general(double value, int digits = 6);

/// Parse a double with full-string validation; throws IoError on junk.
double parse_double(std::string_view s);

/// Parse a non-negative integer with full-string validation; throws IoError.
long long parse_int(std::string_view s);

}  // namespace preempt
