#include "common/integrate.hpp"

#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/thread_annotations.hpp"

namespace preempt {

namespace {

double simpson(double fa, double fm, double fb, double h) {
  return (fa + 4.0 * fm + fb) * h / 6.0;
}

double adaptive_step(const std::function<double(double)>& f, double a, double b, double fa,
                     double fm, double fb, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  PREEMPT_CHECK(std::isfinite(flm) && std::isfinite(frm), "integrand returned non-finite value");
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson correction
  }
  return adaptive_step(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         adaptive_step(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate_adaptive(const std::function<double(double)>& f, double a, double b, double tol,
                          int max_depth) {
  if (a == b) return 0.0;
  double sign = 1.0;
  if (a > b) {
    std::swap(a, b);
    sign = -1.0;
  }
  const double m = 0.5 * (a + b);
  const double fa = f(a), fm = f(m), fb = f(b);
  PREEMPT_CHECK(std::isfinite(fa) && std::isfinite(fm) && std::isfinite(fb),
                "integrand returned non-finite value at panel endpoints");
  const double whole = simpson(fa, fm, fb, b - a);
  return sign * adaptive_step(f, a, b, fa, fm, fb, whole, tol, max_depth);
}

const GaussLegendreRule& gauss_legendre_rule(std::size_t n) {
  PREEMPT_REQUIRE(n >= 1 && n <= 256, "Gauss-Legendre order must be in [1, 256]");
  static Mutex mu{"integrate.gauss_legendre_cache"};
  static std::map<std::size_t, GaussLegendreRule> cache;
  const LockGuard lock(mu);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;

  GaussLegendreRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  // Newton iteration on P_n, symmetric roots; Chebyshev-flavoured initial guess.
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    double x = std::cos(kPi * (static_cast<double>(i) + 0.75) / (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P_{n-1}(x) by the three-term recurrence.
      double p0 = 1.0, p1 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * static_cast<double>(j) + 1.0) * x * p1 - static_cast<double>(j) * p2) /
             (static_cast<double>(j) + 1.0);
      }
      pp = static_cast<double>(n) * (x * p0 - p1) / (x * x - 1.0);
      const double dx = p0 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[i] = -x;
    rule.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  auto [ins, ok] = cache.emplace(n, std::move(rule));
  PREEMPT_CHECK(ok, "gauss rule cache insertion failed");
  return ins->second;
}

double integrate_gauss(const std::function<double(double)>& f, double a, double b, std::size_t n) {
  if (a == b) return 0.0;
  const GaussLegendreRule& rule = gauss_legendre_rule(n);
  const double mid = 0.5 * (a + b);
  const double halfwidth = 0.5 * (b - a);
  KahanSum acc;
  for (std::size_t i = 0; i < n; ++i) {
    acc.add(rule.weights[i] * f(mid + halfwidth * rule.nodes[i]));
  }
  return halfwidth * acc.value();
}

double integrate_gauss_composite(const std::function<double(double)>& f, double a, double b,
                                 std::size_t segments, std::size_t n) {
  PREEMPT_REQUIRE(segments >= 1, "need at least one segment");
  if (a == b) return 0.0;
  const double width = (b - a) / static_cast<double>(segments);
  KahanSum acc;
  for (std::size_t s = 0; s < segments; ++s) {
    const double lo = a + width * static_cast<double>(s);
    const double hi = (s + 1 == segments) ? b : lo + width;
    acc.add(integrate_gauss(f, lo, hi, n));
  }
  return acc.value();
}

double trapezoid(std::span<const double> xs, std::span<const double> ys) {
  PREEMPT_REQUIRE(xs.size() == ys.size(), "trapezoid needs equal-length arrays");
  PREEMPT_REQUIRE(xs.size() >= 2, "trapezoid needs at least two points");
  KahanSum acc;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    PREEMPT_REQUIRE(xs[i] > xs[i - 1], "trapezoid abscissae must be strictly increasing");
    acc.add(0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]));
  }
  return acc.value();
}

}  // namespace preempt
