#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace preempt {

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw IoError("CSV column not found: " + name);
}

namespace {

// Parse one logical CSV record starting at `pos`; advances pos past the
// terminating newline (or to text.size()).
std::vector<std::string> parse_record(const std::string& text, std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field.push_back('"');
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      ++pos;
      fields.push_back(std::move(field));
      return fields;
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) throw IoError("CSV: unterminated quoted field");
  fields.push_back(std::move(field));
  return fields;
}

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

CsvDocument parse_csv(const std::string& text) {
  CsvDocument doc;
  std::size_t pos = 0;
  if (text.empty()) throw IoError("CSV: empty document");
  doc.header = parse_record(text, pos);
  while (pos < text.size()) {
    // Skip blank trailing lines.
    if (text[pos] == '\n' || text[pos] == '\r') {
      ++pos;
      continue;
    }
    auto row = parse_record(text, pos);
    if (row.size() == 1 && row[0].empty()) continue;
    if (row.size() != doc.header.size()) {
      throw IoError(std::string("CSV: row width ") + std::to_string(row.size()) + " does not match header width " +
                    std::to_string(doc.header.size()));
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open CSV file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_csv(ss.str());
}

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out.push_back(',');
    out += quote(header[i]);
  }
  out.push_back('\n');
  for (const auto& row : rows) {
    PREEMPT_REQUIRE(row.size() == header.size(), "CSV row width mismatch");
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(',');
      out += quote(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

void write_csv_file(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write CSV file: " + path);
  out << to_csv(header, rows);
  if (!out) throw IoError("write failed for CSV file: " + path);
}

}  // namespace preempt
