// Piecewise-linear interpolation with monotone-inverse support.
//
// Used to (a) tabulate CDFs for fast inverse-transform sampling and
// (b) represent empirical / piecewise models.
#pragma once

#include <span>
#include <vector>

namespace preempt {

/// Piecewise-linear interpolant through (x_i, y_i) with strictly increasing x.
/// Evaluation outside [x_front, x_back] clamps to the boundary value.
class LinearInterpolator {
 public:
  LinearInterpolator() = default;

  /// Build from matching spans; throws InvalidArgument on bad input.
  LinearInterpolator(std::span<const double> xs, std::span<const double> ys);

  /// Interpolated value at x (clamped at the ends).
  double operator()(double x) const;

  /// For a non-decreasing y sequence: smallest x with value(x) >= y
  /// (clamped to the domain). Used for inverse-CDF sampling.
  double inverse(double y) const;

  bool empty() const noexcept { return xs_.empty(); }
  std::size_t size() const noexcept { return xs_.size(); }
  double x_min() const;
  double x_max() const;
  const std::vector<double>& xs() const noexcept { return xs_; }
  const std::vector<double>& ys() const noexcept { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace preempt
