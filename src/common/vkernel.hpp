// Vectorized math kernels for the sampling hot paths.
//
// The Monte-Carlo layers bottleneck on exp/log evaluations inside
// sample_many (two exponentials per bathtub Newton step, one per
// exponential/Weibull/log-normal transform). libm's std::exp cannot be
// vectorized by the caller, so this layer provides polynomial kernels with
// three implementations — a scalar reference, a 2-wide SSE2 path and a
// 4-wide AVX2 path — that perform *the same IEEE operations in the same
// order on every lane*. That makes the batched entry points bit-identical
// to a scalar loop over the reference kernel, which in turn keeps the
// repo-wide sample_many ≡ sequential sample() contract intact no matter
// which path the CPU dispatch picks.
//
// Determinism contract:
//   * exp_many(x, out, n) ≡ { for i: out[i] = vk::exp(x[i]) } bit-for-bit,
//     on every path (scalar / SSE2 / AVX2) and in every build
//     (-DPREEMPT_SIMD=ON or OFF). Same for the other *_many entry points.
//   * No FMA: the kernels are compiled without -mfma and with
//     -ffp-contract=off, so a*b+c is always mul-then-add on every path.
//   * Accuracy is a few ULP against libm over the sampling domain
//     (asserted by tests/test_vkernel.cpp), not correctly-rounded; callers
//     that need libm-exact values (cdf/pdf reference code) keep std::.
//
// Dispatch: the widest path the CPU supports is chosen once per process
// (AVX2 > SSE2 > scalar). -DPREEMPT_SIMD=OFF compiles the SIMD translation
// units empty and pins the dispatch to scalar. force_scalar(true) pins it
// at runtime — the cross-path golden tests flip it to prove bit-identity
// inside a single binary.
#pragma once

#include <cstddef>

namespace preempt::vk {

/// Which implementation the batched entry points run on.
enum class Path { kScalar, kSse2, kAvx2 };

/// The path the next *_many call will take (after force_scalar).
Path active_path() noexcept;
const char* path_name(Path path) noexcept;

/// True when the SIMD translation units were compiled in (-DPREEMPT_SIMD=ON
/// on an x86-64 toolchain). active_path() may still be kScalar on old CPUs.
bool simd_compiled() noexcept;

/// Pin the batched entry points to the scalar reference path (test hook;
/// also used by the cross-path golden tests). Thread-safe toggle.
void force_scalar(bool on) noexcept;
bool scalar_forced() noexcept;

// ---------------------------------------------------------------- scalar
// The lane reference. Per-draw sample()/quantile() call these directly so a
// single draw and a batched draw share one rounding behaviour.

double exp(double x) noexcept;
double log(double x) noexcept;
double expm1(double x) noexcept;
double log1p(double x) noexcept;

// --------------------------------------------------------------- batched
// out[i] = kernel(x[i]) for i < n; in-place (out == x) is allowed. Tail
// elements past the widest vector run the scalar reference, which is
// bit-identical by construction.

void exp_many(const double* x, double* out, std::size_t n) noexcept;
void log_many(const double* x, double* out, std::size_t n) noexcept;
void expm1_many(const double* x, double* out, std::size_t n) noexcept;
void log1p_many(const double* x, double* out, std::size_t n) noexcept;

}  // namespace preempt::vk
