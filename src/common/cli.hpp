// Tiny declarative command-line flags parser for the tools/ binaries.
//
// Supports --name value, --name=value, boolean --flag, typed accessors with
// defaults, required flags, and usage text generation. Deliberately small:
// the tools need exactly this and nothing more.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace preempt {

class FlagSet {
 public:
  explicit FlagSet(std::string program_name) : program_(std::move(program_name)) {}

  /// Declare flags before parse(); declaration order drives usage() layout.
  FlagSet& add_string(const std::string& name, const std::string& default_value,
                      const std::string& help);
  FlagSet& add_double(const std::string& name, double default_value, const std::string& help);
  FlagSet& add_int(const std::string& name, long long default_value, const std::string& help);
  FlagSet& add_bool(const std::string& name, const std::string& help);  ///< defaults to false
  FlagSet& add_required(const std::string& name, const std::string& help);  ///< string, no default

  /// Parse argv-style arguments (excluding argv[0]). Throws InvalidArgument
  /// on unknown flags, missing values, type errors or absent required flags.
  /// Non-flag tokens are collected as positional arguments.
  void parse(const std::vector<std::string>& args);

  // Typed accessors (post-parse; throw InvalidArgument for undeclared names).
  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  long long get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  bool is_set(const std::string& name) const;  ///< explicitly given on the command line?

  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Aligned flag summary for --help output.
  std::string usage() const;

 private:
  enum class Kind { kString, kDouble, kInt, kBool };
  struct Spec {
    Kind kind;
    std::string default_value;
    std::string help;
    bool required = false;
  };
  const Spec& spec(const std::string& name) const;
  FlagSet& declare(const std::string& name, Kind kind, std::string default_value,
                   std::string help, bool required);

  std::string program_;
  std::vector<std::string> order_;  ///< declaration order for usage()
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace preempt
