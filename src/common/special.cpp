#include "common/special.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Acklam's rational approximation to Φ⁻¹ (relative error < 1.15e-9 before
/// refinement). Coefficients are the published ones.
double acklam_quantile(double p) noexcept {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (p < p_low) {  // lower tail
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {  // central region
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  // upper tail: reflect
  const double q = std::sqrt(-2.0 * std::log1p(-p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

/// Lower-incomplete-gamma power series, valid (fast) for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Upper-incomplete-gamma continued fraction (modified Lentz), for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double normal_pdf(double x) noexcept {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * kPi);
}

double normal_cdf(double x) noexcept {
  // erfc keeps full relative accuracy in the lower tail where 1+erf loses it.
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) noexcept {
  if (std::isnan(p) || p < 0.0 || p > 1.0) return kNan;
  if (p == 0.0) return -kInf;
  if (p == 1.0) return kInf;
  double x = acklam_quantile(p);
  // One Halley step against the exact CDF pushes the error to ~1 ulp.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double erf_inv(double x) noexcept {
  if (std::isnan(x) || x < -1.0 || x > 1.0) return kNan;
  if (x == -1.0) return -kInf;
  if (x == 1.0) return kInf;
  return normal_quantile(0.5 * (x + 1.0)) / std::sqrt(2.0);
}

double regularized_gamma_p(double a, double x) {
  PREEMPT_REQUIRE(a > 0.0, "regularized_gamma_p requires a > 0");
  PREEMPT_REQUIRE(x >= 0.0, "regularized_gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return clamp01(gamma_p_series(a, x));
  return clamp01(1.0 - gamma_q_contfrac(a, x));
}

double regularized_gamma_q(double a, double x) {
  PREEMPT_REQUIRE(a > 0.0, "regularized_gamma_q requires a > 0");
  PREEMPT_REQUIRE(x >= 0.0, "regularized_gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return clamp01(1.0 - gamma_p_series(a, x));
  return clamp01(gamma_q_contfrac(a, x));
}

double log_gamma(double x) {
  PREEMPT_REQUIRE(x > 0.0, "log_gamma requires x > 0");
  return std::lgamma(x);
}

double digamma(double x) {
  PREEMPT_REQUIRE(x > 0.0, "digamma requires x > 0");
  // Shift x up until the asymptotic expansion is accurate (x >= 12 keeps the
  // truncation error below ~1e-13), using ψ(x) = ψ(x + 1) - 1/x.
  double result = 0.0;
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // ψ(x) ≈ ln x - 1/(2x) - 1/(12x²) + 1/(120x⁴) - 1/(252x⁶) + 1/(240x⁸)
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

}  // namespace preempt
