// AVX2 (4-wide) implementations of the vkernel batched entry points.
//
// Compiled with -mavx2 (and NOT -mfma; contraction is also disabled with
// -ffp-contract=off) in its own translation unit so the rest of the library
// stays runnable on baseline x86-64 — the dispatch in vkernel.cpp only
// calls into here after __builtin_cpu_supports("avx2").
//
// Every vector sequence below mirrors the scalar reference in vkernel.cpp
// operation for operation; the scalar special-case branches become mask
// blends selecting the same values. Tails shorter than a vector run the
// scalar kernel, which is bit-identical by construction.
#include "common/vkernel.hpp"
#include "common/vkernel_detail.hpp"

#if defined(PREEMPT_VKERNEL_SIMD)

#include <immintrin.h>

#include <limits>

namespace preempt::vk::detail {

namespace {

const __m256d kVInf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
const __m256d kVQnan = _mm256_set1_pd(std::numeric_limits<double>::quiet_NaN());

/// 2^n for integer-valued lanes (the vector twin of pow2i): double→int64 via
/// the 2^52+2^51 magic-constant trick, then a bare exponent-field build.
inline __m256d pow2i4(__m256d n) noexcept {
  const __m256d magic = _mm256_set1_pd(0x1.8p52);
  const __m256i k = _mm256_sub_epi64(
      _mm256_castpd_si256(_mm256_add_pd(n, magic)), _mm256_castpd_si256(magic));
  return _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(k, _mm256_set1_epi64x(1023)), 52));
}

/// Exact int64→double for small non-negative lane values (< 2^51).
inline __m256d to_double_i64(__m256i v) noexcept {
  const __m256d magic = _mm256_set1_pd(0x1.8p52);
  return _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(v, _mm256_castpd_si256(magic))),
      magic);
}

inline __m256d exp4(__m256d x) noexcept {
  const __m256d vmax = _mm256_set1_pd(kExpMax);
  const __m256d vmin = _mm256_set1_pd(kExpMin);
  const __m256d unord = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  const __m256d over = _mm256_cmp_pd(x, vmax, _CMP_GT_OQ);
  const __m256d under = _mm256_cmp_pd(x, vmin, _CMP_LT_OQ);
  // NaN lanes become vmin here (maxpd returns the second operand on NaN) and
  // are blended back to x at the end.
  const __m256d xc = _mm256_min_pd(_mm256_max_pd(x, vmin), vmax);
  const __m256d k = _mm256_floor_pd(_mm256_add_pd(
      _mm256_mul_pd(xc, _mm256_set1_pd(kLog2E)), _mm256_set1_pd(0.5)));
  const __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(xc, _mm256_mul_pd(k, _mm256_set1_pd(kLn2Hi))),
      _mm256_mul_pd(k, _mm256_set1_pd(kLn2Lo)));
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d px = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpP0), r2),
                             _mm256_set1_pd(kExpP1));
  px = _mm256_add_pd(_mm256_mul_pd(px, r2), _mm256_set1_pd(kExpP2));
  px = _mm256_mul_pd(r, px);
  __m256d qx = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpQ0), r2),
                             _mm256_set1_pd(kExpQ1));
  qx = _mm256_add_pd(_mm256_mul_pd(qx, r2), _mm256_set1_pd(kExpQ2));
  qx = _mm256_add_pd(_mm256_mul_pd(qx, r2), _mm256_set1_pd(kExpQ3));
  __m256d y = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_mul_pd(_mm256_set1_pd(2.0),
                    _mm256_div_pd(px, _mm256_sub_pd(qx, px))));
  const __m256d kh = _mm256_floor_pd(_mm256_mul_pd(k, _mm256_set1_pd(0.5)));
  y = _mm256_mul_pd(y, pow2i4(kh));
  y = _mm256_mul_pd(y, pow2i4(_mm256_sub_pd(k, kh)));
  y = _mm256_blendv_pd(y, kVInf, over);
  y = _mm256_blendv_pd(y, _mm256_setzero_pd(), under);
  y = _mm256_blendv_pd(y, x, unord);
  return y;
}

inline __m256d log4(__m256d x) noexcept {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d unord = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  const __m256d is_zero = _mm256_cmp_pd(x, zero, _CMP_EQ_OQ);
  const __m256d neg = _mm256_cmp_pd(x, zero, _CMP_LT_OQ);
  const __m256d is_inf = _mm256_cmp_pd(x, kVInf, _CMP_EQ_OQ);
  // Subnormals prescale by 2^54; zero/negative lanes ride along harmlessly
  // (their core result is garbage and gets blended below).
  const __m256d tiny =
      _mm256_cmp_pd(x, _mm256_set1_pd(kDblMinNormal), _CMP_LT_OQ);
  const __m256d xs =
      _mm256_blendv_pd(x, _mm256_mul_pd(x, _mm256_set1_pd(0x1p54)), tiny);
  __m256d e = _mm256_and_pd(tiny, _mm256_set1_pd(-54.0));
  const __m256i bits = _mm256_castpd_si256(xs);
  const __m256i e_int = _mm256_srli_epi64(bits, 52);
  e = _mm256_add_pd(
      e, _mm256_sub_pd(to_double_i64(e_int), _mm256_set1_pd(1023.0)));
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits,
                       _mm256_set1_epi64x(static_cast<long long>(kMantissaMask))),
      _mm256_set1_epi64x(static_cast<long long>(kOneExpBits))));
  const __m256d big = _mm256_cmp_pd(m, _mm256_set1_pd(kSqrt2), _CMP_GE_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), big);
  e = _mm256_add_pd(e, _mm256_and_pd(big, _mm256_set1_pd(1.0)));
  const __m256d f = _mm256_sub_pd(m, _mm256_set1_pd(1.0));
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  __m256d t1 = _mm256_add_pd(_mm256_mul_pd(w, _mm256_set1_pd(kLg6)),
                             _mm256_set1_pd(kLg4));
  t1 = _mm256_add_pd(_mm256_mul_pd(w, t1), _mm256_set1_pd(kLg2));
  t1 = _mm256_mul_pd(w, t1);
  __m256d t2 = _mm256_add_pd(_mm256_mul_pd(w, _mm256_set1_pd(kLg7)),
                             _mm256_set1_pd(kLg5));
  t2 = _mm256_add_pd(_mm256_mul_pd(w, t2), _mm256_set1_pd(kLg3));
  t2 = _mm256_add_pd(_mm256_mul_pd(w, t2), _mm256_set1_pd(kLg1));
  t2 = _mm256_mul_pd(z, t2);
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), f), f);
  const __m256d inner =
      _mm256_add_pd(_mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
                    _mm256_mul_pd(e, _mm256_set1_pd(kLogLn2Lo)));
  __m256d y = _mm256_sub_pd(_mm256_mul_pd(e, _mm256_set1_pd(kLogLn2Hi)),
                            _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f));
  y = _mm256_blendv_pd(y, _mm256_sub_pd(zero, kVInf), is_zero);
  y = _mm256_blendv_pd(y, kVQnan, neg);
  y = _mm256_blendv_pd(y, kVInf, is_inf);
  y = _mm256_blendv_pd(y, x, unord);
  return y;
}

inline __m256d expm1_4(__m256d x) noexcept {
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  const __m256d bound = _mm256_set1_pd(kExpm1Bound);
  const __m256d small =
      _mm256_cmp_pd(_mm256_and_pd(x, absmask), bound, _CMP_LT_OQ);
  // Clamp the rational's input so non-small lanes can't manufacture a 0/0
  // while computing a value that is blended away anyway.
  const __m256d xc =
      _mm256_min_pd(_mm256_max_pd(x, _mm256_sub_pd(_mm256_setzero_pd(), bound)),
                    bound);
  const __m256d r2 = _mm256_mul_pd(xc, xc);
  __m256d px = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpP0), r2),
                             _mm256_set1_pd(kExpP1));
  px = _mm256_add_pd(_mm256_mul_pd(px, r2), _mm256_set1_pd(kExpP2));
  px = _mm256_mul_pd(xc, px);
  __m256d qx = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpQ0), r2),
                             _mm256_set1_pd(kExpQ1));
  qx = _mm256_add_pd(_mm256_mul_pd(qx, r2), _mm256_set1_pd(kExpQ2));
  qx = _mm256_add_pd(_mm256_mul_pd(qx, r2), _mm256_set1_pd(kExpQ3));
  const __m256d rational = _mm256_mul_pd(
      _mm256_set1_pd(2.0), _mm256_div_pd(px, _mm256_sub_pd(qx, px)));
  const __m256d via_exp = _mm256_sub_pd(exp4(x), _mm256_set1_pd(1.0));
  return _mm256_blendv_pd(via_exp, rational, small);
}

inline __m256d log1p_4(__m256d x) noexcept {
  const __m256d unord = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  const __m256d out_of_band =
      _mm256_or_pd(_mm256_cmp_pd(x, _mm256_set1_pd(kLog1pHi), _CMP_GT_OQ),
                   _mm256_cmp_pd(x, _mm256_set1_pd(kLog1pLo), _CMP_LT_OQ));
  // Clamped input keeps the in-band core finite on every lane.
  const __m256d f =
      _mm256_min_pd(_mm256_max_pd(x, _mm256_set1_pd(kLog1pLo)),
                    _mm256_set1_pd(kLog1pHi));
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  __m256d t1 = _mm256_add_pd(_mm256_mul_pd(w, _mm256_set1_pd(kLg6)),
                             _mm256_set1_pd(kLg4));
  t1 = _mm256_add_pd(_mm256_mul_pd(w, t1), _mm256_set1_pd(kLg2));
  t1 = _mm256_mul_pd(w, t1);
  __m256d t2 = _mm256_add_pd(_mm256_mul_pd(w, _mm256_set1_pd(kLg7)),
                             _mm256_set1_pd(kLg5));
  t2 = _mm256_add_pd(_mm256_mul_pd(w, t2), _mm256_set1_pd(kLg3));
  t2 = _mm256_add_pd(_mm256_mul_pd(w, t2), _mm256_set1_pd(kLg1));
  t2 = _mm256_mul_pd(z, t2);
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), f), f);
  const __m256d in_band = _mm256_sub_pd(
      f, _mm256_sub_pd(hfsq, _mm256_mul_pd(s, _mm256_add_pd(hfsq, r))));
  const __m256d via_log = log4(_mm256_add_pd(_mm256_set1_pd(1.0), x));
  __m256d y = _mm256_blendv_pd(in_band, via_log, out_of_band);
  y = _mm256_blendv_pd(y, x, unord);
  return y;
}

}  // namespace

void exp_many_avx2(const double* x, double* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, exp4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = vk::exp(x[i]);
}

void log_many_avx2(const double* x, double* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, log4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = vk::log(x[i]);
}

void expm1_many_avx2(const double* x, double* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, expm1_4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = vk::expm1(x[i]);
}

void log1p_many_avx2(const double* x, double* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, log1p_4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = vk::log1p(x[i]);
}

}  // namespace preempt::vk::detail

#endif  // PREEMPT_VKERNEL_SIMD
