// SSE2 (2-wide) implementations of the vkernel batched entry points.
//
// This is the fallback SIMD tier for x86-64 CPUs without AVX2. It compiles
// with the baseline target flags only (SSE2 is part of the x86-64 ABI), in
// its own translation unit so no AVX encodings can leak in from elsewhere.
//
// SSE2 has no pcmpgtq/blendv/floor, so:
//   * floor2() is emulated with a truncating convert + ordered-compare
//     adjust (exact for the |y| < 2^31 arguments exp produces);
//   * blend2() is the classic and/andnot/or select on full-lane masks;
//   * log/log1p need 64-bit integer compares on exponent fields, which is
//     not worth emulating at width 2 — those two delegate to the scalar
//     reference per element (bit-identical by definition). The sampling hot
//     paths (bathtub Newton, Gompertz) only batch exp/expm1.
// Each vector sequence mirrors the scalar reference in vkernel.cpp
// operation for operation; branches become mask blends of the same values.
#include "common/vkernel.hpp"
#include "common/vkernel_detail.hpp"

#if defined(PREEMPT_VKERNEL_SIMD)

#include <emmintrin.h>

#include <limits>

namespace preempt::vk::detail {

namespace {

const __m128d kVInf2 = _mm_set1_pd(std::numeric_limits<double>::infinity());

/// mask ? a : b with full-lane (all-ones / all-zeros) masks.
inline __m128d blend2(__m128d mask, __m128d a, __m128d b) noexcept {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}

/// floor for |y| < 2^31: truncate toward zero, subtract 1 where the
/// truncation rounded up (negative non-integers).
inline __m128d floor2(__m128d y) noexcept {
  const __m128d t = _mm_cvtepi32_pd(_mm_cvttpd_epi32(y));
  const __m128d rounded_up = _mm_cmpgt_pd(t, y);
  return _mm_sub_pd(t, _mm_and_pd(rounded_up, _mm_set1_pd(1.0)));
}

/// 2^n for integer-valued lanes: double→int64 via the 2^52+2^51 magic
/// constant, then a bare exponent-field build (same trick as the AVX2 TU).
inline __m128d pow2i2(__m128d n) noexcept {
  const __m128d magic = _mm_set1_pd(0x1.8p52);
  const __m128i k =
      _mm_sub_epi64(_mm_castpd_si128(_mm_add_pd(n, magic)),
                    _mm_castpd_si128(magic));
  return _mm_castsi128_pd(
      _mm_slli_epi64(_mm_add_epi64(k, _mm_set1_epi64x(1023)), 52));
}

inline __m128d exp2w(__m128d x) noexcept {
  const __m128d vmax = _mm_set1_pd(kExpMax);
  const __m128d vmin = _mm_set1_pd(kExpMin);
  const __m128d unord = _mm_cmpunord_pd(x, x);
  const __m128d over = _mm_cmpgt_pd(x, vmax);
  const __m128d under = _mm_cmplt_pd(x, vmin);
  // NaN lanes become vmin here (maxpd returns the second operand on NaN)
  // and are blended back to x at the end.
  const __m128d xc = _mm_min_pd(_mm_max_pd(x, vmin), vmax);
  const __m128d k = floor2(
      _mm_add_pd(_mm_mul_pd(xc, _mm_set1_pd(kLog2E)), _mm_set1_pd(0.5)));
  const __m128d r =
      _mm_sub_pd(_mm_sub_pd(xc, _mm_mul_pd(k, _mm_set1_pd(kLn2Hi))),
                 _mm_mul_pd(k, _mm_set1_pd(kLn2Lo)));
  const __m128d r2 = _mm_mul_pd(r, r);
  __m128d px =
      _mm_add_pd(_mm_mul_pd(_mm_set1_pd(kExpP0), r2), _mm_set1_pd(kExpP1));
  px = _mm_add_pd(_mm_mul_pd(px, r2), _mm_set1_pd(kExpP2));
  px = _mm_mul_pd(r, px);
  __m128d qx =
      _mm_add_pd(_mm_mul_pd(_mm_set1_pd(kExpQ0), r2), _mm_set1_pd(kExpQ1));
  qx = _mm_add_pd(_mm_mul_pd(qx, r2), _mm_set1_pd(kExpQ2));
  qx = _mm_add_pd(_mm_mul_pd(qx, r2), _mm_set1_pd(kExpQ3));
  __m128d y = _mm_add_pd(
      _mm_set1_pd(1.0),
      _mm_mul_pd(_mm_set1_pd(2.0), _mm_div_pd(px, _mm_sub_pd(qx, px))));
  const __m128d kh = floor2(_mm_mul_pd(k, _mm_set1_pd(0.5)));
  y = _mm_mul_pd(y, pow2i2(kh));
  y = _mm_mul_pd(y, pow2i2(_mm_sub_pd(k, kh)));
  y = blend2(over, kVInf2, y);
  y = blend2(under, _mm_setzero_pd(), y);
  y = blend2(unord, x, y);
  return y;
}

inline __m128d expm1_2w(__m128d x) noexcept {
  const __m128d absmask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  const __m128d bound = _mm_set1_pd(kExpm1Bound);
  const __m128d small = _mm_cmplt_pd(_mm_and_pd(x, absmask), bound);
  // Clamp the rational's input so non-small lanes can't manufacture a 0/0
  // while computing a value that is blended away anyway.
  const __m128d xc = _mm_min_pd(
      _mm_max_pd(x, _mm_sub_pd(_mm_setzero_pd(), bound)), bound);
  const __m128d r2 = _mm_mul_pd(xc, xc);
  __m128d px =
      _mm_add_pd(_mm_mul_pd(_mm_set1_pd(kExpP0), r2), _mm_set1_pd(kExpP1));
  px = _mm_add_pd(_mm_mul_pd(px, r2), _mm_set1_pd(kExpP2));
  px = _mm_mul_pd(xc, px);
  __m128d qx =
      _mm_add_pd(_mm_mul_pd(_mm_set1_pd(kExpQ0), r2), _mm_set1_pd(kExpQ1));
  qx = _mm_add_pd(_mm_mul_pd(qx, r2), _mm_set1_pd(kExpQ2));
  qx = _mm_add_pd(_mm_mul_pd(qx, r2), _mm_set1_pd(kExpQ3));
  const __m128d rational =
      _mm_mul_pd(_mm_set1_pd(2.0), _mm_div_pd(px, _mm_sub_pd(qx, px)));
  const __m128d via_exp = _mm_sub_pd(exp2w(x), _mm_set1_pd(1.0));
  return blend2(small, rational, via_exp);
}

}  // namespace

void exp_many_sse2(const double* x, double* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, exp2w(_mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = vk::exp(x[i]);
}

void log_many_sse2(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = vk::log(x[i]);
}

void expm1_many_sse2(const double* x, double* out, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, expm1_2w(_mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = vk::expm1(x[i]);
}

void log1p_many_sse2(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = vk::log1p(x[i]);
}

}  // namespace preempt::vk::detail

#endif  // PREEMPT_VKERNEL_SIMD
