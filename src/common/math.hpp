// Small numeric helpers shared by every module.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace preempt {

inline constexpr double kPi = 3.141592653589793238462643383279502884;

/// Relative/absolute closeness test (mirrors numpy.isclose semantics).
inline bool is_close(double a, double b, double rel_tol = 1e-9, double abs_tol = 0.0) noexcept {
  return std::abs(a - b) <= std::max(rel_tol * std::max(std::abs(a), std::abs(b)), abs_tol);
}

/// x*x, kept out-of-line-free for readability in formulas.
inline constexpr double sq(double x) noexcept { return x * x; }

/// Clamp into [lo, hi].
inline constexpr double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Clamp a probability into [0, 1].
inline constexpr double clamp01(double x) noexcept { return clamp(x, 0.0, 1.0); }

/// True if x is neither NaN nor infinite.
inline bool is_finite(double x) noexcept { return std::isfinite(x); }

/// n evenly spaced points on [lo, hi] inclusive (n >= 2), or {lo} for n == 1.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Kahan–Babuska compensated accumulator for long reduction loops.
class KahanSum {
 public:
  void add(double x) noexcept {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  double value() const noexcept { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace preempt
