// Minimal JSON value, parser and writer for the HTTP service API.
//
// Implements the full JSON grammar (RFC 8259) over a simple tagged value —
// enough for request bodies and responses; not a streaming parser, no
// comments/trailing-comma extensions. Numbers are doubles (like JavaScript);
// object key order is preserved for stable output.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace preempt {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Key/value pairs in insertion order.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(google-explicit-constructor)
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}  // NOLINT
  JsonValue(int n) : kind_(Kind::kNumber), number_(n) {}  // NOLINT
  JsonValue(long long n)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(std::size_t n)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(JsonArray a) : kind_(Kind::kArray), array_(std::move(a)) {}  // NOLINT
  JsonValue(JsonObject o) : kind_(Kind::kObject), object_(std::move(o)) {}  // NOLINT

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  // Checked accessors; throw InvalidArgument on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  // Convenience typed lookups with defaults (object values only).
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  /// Serialise; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Parse JSON text; throws IoError with position information on any
/// syntax error or trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace preempt
