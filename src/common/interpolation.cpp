#include "common/interpolation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace preempt {

LinearInterpolator::LinearInterpolator(std::span<const double> xs, std::span<const double> ys)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  PREEMPT_REQUIRE(xs_.size() == ys_.size(), "interpolator needs equal-length arrays");
  PREEMPT_REQUIRE(xs_.size() >= 2, "interpolator needs at least two points");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    PREEMPT_REQUIRE(xs_[i] > xs_[i - 1], "interpolator abscissae must be strictly increasing");
  }
}

double LinearInterpolator::operator()(double x) const {
  PREEMPT_REQUIRE(!xs_.empty(), "empty interpolator");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + frac * (ys_[hi] - ys_[lo]);
}

double LinearInterpolator::inverse(double y) const {
  PREEMPT_REQUIRE(!xs_.empty(), "empty interpolator");
  if (y <= ys_.front()) return xs_.front();
  if (y >= ys_.back()) return xs_.back();
  // ys_ is assumed non-decreasing; find the first segment crossing y.
  const auto it = std::lower_bound(ys_.begin(), ys_.end(), y);
  std::size_t hi = static_cast<std::size_t>(it - ys_.begin());
  if (hi == 0) return xs_.front();
  const std::size_t lo = hi - 1;
  const double dy = ys_[hi] - ys_[lo];
  if (dy <= 0.0) return xs_[hi];  // flat segment: return its right edge
  const double frac = (y - ys_[lo]) / dy;
  return xs_[lo] + frac * (xs_[hi] - xs_[lo]);
}

double LinearInterpolator::x_min() const {
  PREEMPT_REQUIRE(!xs_.empty(), "empty interpolator");
  return xs_.front();
}

double LinearInterpolator::x_max() const {
  PREEMPT_REQUIRE(!xs_.empty(), "empty interpolator");
  return xs_.back();
}

}  // namespace preempt
