// Deterministic, fast pseudo-random number generation.
//
// We provide xoshiro256** (Blackman & Vigna) seeded through SplitMix64 so that
// experiments are reproducible bit-for-bit across platforms; std::mt19937_64
// seeding is implementation-defined in subtle ways and ~2x slower for our
// Monte-Carlo loops. Satisfies std::uniform_random_bit_generator.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace preempt {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into the
/// xoshiro state (the construction recommended by the xoshiro authors).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Seed for the `index`-th independent substream of `seed`: SplitMix64 over
/// a golden-ratio offset, so parallel replicates get decorrelated streams as
/// a pure function of (seed, index) — results never depend on thread count.
/// Shared by the parallel bootstrap and replicated API bag runs.
inline std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t index) noexcept {
  return SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))).next();
}

/// xoshiro256** 1.0 — all-purpose 64-bit generator with 256-bit state.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); used to derive independent
  /// streams for parallel workers.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Convenience façade bundling a generator with the variate transforms used
/// throughout the library. All methods are deterministic given the seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) noexcept : gen_(seed) {}

  /// Uniform double in the open interval (0, 1): odd multiples of 2^-53,
  /// i.e. the midpoints of the 2^52 dyadic cells. Excluding 0 matters for
  /// inverse-transform sampling, where u == 0 maps to zero-length lifetimes
  /// (and quantile(0) short-circuits); the all-zero-bits draw lands on
  /// 2^-53 instead, and the all-one-bits draw on 1 - 2^-53 (both exactly
  /// representable — a floating-point "+ 0.5" midpoint would round the top
  /// cell to exactly 1.0).
  double uniform() noexcept { return to_open_unit(gen_()); }

  /// The bit transform behind uniform(); exposed so the all-zero-bits and
  /// all-one-bits edge paths are directly testable.
  static constexpr double to_open_unit(std::uint64_t bits) noexcept {
    return static_cast<double>(((bits >> 12) << 1) | 1) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi]: although uniform() is open-interval, the
  /// affine map can round to either endpoint (e.g. hi - hi*2^-53 rounds to
  /// hi for most magnitudes), so callers must not rely on strict openness.
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Fill `out` with uniform integers in [0, n): the batched form of
  /// uniform_index, consuming the stream in the same order (bit-identical
  /// to out.size() sequential calls) while keeping the generator state in
  /// registers across the whole batch. Bootstrap resampling's hot loop.
  void uniform_indices(std::uint64_t n, std::span<std::uint64_t> out) noexcept;

  /// Exponential variate with the given rate (= 1/mean).
  double exponential(double rate) noexcept;

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double normal() noexcept;

  /// Normal variate with mean/stddev.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Bernoulli trial.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Sample an index from unnormalised non-negative weights.
  std::size_t discrete(const std::vector<double>& weights);

  /// Fork an independent stream: the child continues from the current state
  /// while this generator jumps 2^128 draws ahead, so the two sequences
  /// cannot overlap in any feasible computation.
  Rng fork() noexcept {
    Rng child = *this;
    gen_.jump();
    child.spare_valid_ = false;
    spare_valid_ = false;
    return child;
  }

  Xoshiro256StarStar& generator() noexcept { return gen_; }

 private:
  Xoshiro256StarStar gen_;
  double spare_ = 0.0;
  bool spare_valid_ = false;
};

}  // namespace preempt
