#include "common/random.hpp"

#include <cmath>

#include "common/error.hpp"

namespace preempt {

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling; bias is < 2^-64 * n which
  // is negligible for our n (at most millions), so we skip the rejection loop.
  // (__int128 is a GCC/Clang extension; __extension__ silences -Wpedantic.)
  __extension__ using uint128 = unsigned __int128;
  const uint128 m = static_cast<uint128>(gen_()) * n;
  return static_cast<std::uint64_t>(m >> 64);
}

void Rng::uniform_indices(std::uint64_t n, std::span<std::uint64_t> out) noexcept {
  // Same nearly-divisionless transform as uniform_index, applied per slot on
  // a local generator copy so the 256-bit state stays in registers for the
  // whole batch.
  __extension__ using uint128 = unsigned __int128;
  Xoshiro256StarStar gen = gen_;
  for (std::uint64_t& slot : out) {
    const uint128 m = static_cast<uint128>(gen()) * n;
    slot = static_cast<std::uint64_t>(m >> 64);
  }
  gen_ = gen;
}

double Rng::exponential(double rate) noexcept {
  // -log(1-U) with U in (0,1): never 0, never log(0).
  return -std::log1p(-uniform()) / rate;
}

double Rng::normal() noexcept {
  if (spare_valid_) {
    spare_valid_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  spare_valid_ = true;
  return u * factor;
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  PREEMPT_REQUIRE(!weights.empty(), "discrete() needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    PREEMPT_REQUIRE(w >= 0.0, "discrete() weights must be non-negative");
    total += w;
  }
  PREEMPT_REQUIRE(total > 0.0, "discrete() weights must not all be zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // guard against accumulated rounding
}

}  // namespace preempt
