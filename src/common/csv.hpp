// Minimal CSV reader/writer for the preemption dataset interchange format.
//
// The paper publishes its preemption dataset as CSV; our Dataset round-trips
// through this module so synthetic traces can be persisted and re-analysed
// exactly like the original data would be.
#pragma once

#include <string>
#include <vector>

namespace preempt {

/// A parsed CSV document: header plus string rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws IoError if absent.
  std::size_t column(const std::string& name) const;
};

/// Parse CSV text. Supports double-quoted fields with embedded commas and
/// doubled quotes; rejects rows whose width differs from the header.
CsvDocument parse_csv(const std::string& text);

/// Read and parse a CSV file; throws IoError if unreadable.
CsvDocument read_csv_file(const std::string& path);

/// Serialise rows to CSV text, quoting fields that need it.
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

/// Write CSV text to a file; throws IoError on failure.
void write_csv_file(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace preempt
