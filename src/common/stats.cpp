#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt {

double mean(std::span<const double> xs) {
  PREEMPT_REQUIRE(!xs.empty(), "mean of empty sample");
  KahanSum s;
  for (double x : xs) s.add(x);
  return s.value() / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  PREEMPT_REQUIRE(xs.size() >= 2, "variance needs n >= 2");
  const double m = mean(xs);
  KahanSum s;
  for (double x : xs) s.add(sq(x - m));
  return s.value() / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  PREEMPT_REQUIRE(!xs.empty(), "quantile of empty sample");
  PREEMPT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double min_of(std::span<const double> xs) {
  PREEMPT_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  PREEMPT_REQUIRE(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  PREEMPT_REQUIRE(xs.size() == ys.size(), "correlation needs equal-length samples");
  PREEMPT_REQUIRE(xs.size() >= 2, "correlation needs n >= 2");
  const double mx = mean(xs), my = mean(ys);
  KahanSum sxy, sxx, syy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy.add((xs[i] - mx) * (ys[i] - my));
    sxx.add(sq(xs[i] - mx));
    syy.add(sq(ys[i] - my));
  }
  const double denom = std::sqrt(sxx.value() * syy.value());
  PREEMPT_REQUIRE(denom > 0.0, "correlation undefined for constant sample");
  return sxy.value() / denom;
}

LinearFit linear_regression(std::span<const double> xs, std::span<const double> ys) {
  PREEMPT_REQUIRE(xs.size() == ys.size(), "regression needs equal-length samples");
  PREEMPT_REQUIRE(xs.size() >= 2, "regression needs n >= 2");
  const double mx = mean(xs), my = mean(ys);
  KahanSum sxy, sxx, syy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy.add((xs[i] - mx) * (ys[i] - my));
    sxx.add(sq(xs[i] - mx));
    syy.add(sq(ys[i] - my));
  }
  PREEMPT_REQUIRE(sxx.value() > 0.0, "regression undefined for constant x");
  LinearFit fit;
  fit.slope = sxy.value() / sxx.value();
  fit.intercept = my - fit.slope * mx;
  if (syy.value() > 0.0) {
    KahanSum ss_res;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ss_res.add(sq(ys[i] - (fit.intercept + fit.slope * xs[i])));
    }
    fit.r2 = 1.0 - ss_res.value() / syy.value();
  } else {
    fit.r2 = 1.0;
  }
  return fit;
}

Summary summarize(std::span<const double> xs) {
  PREEMPT_REQUIRE(!xs.empty(), "summarize of empty sample");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.min = min_of(xs);
  s.p25 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.5);
  s.p75 = quantile(xs, 0.75);
  s.max = max_of(xs);
  return s;
}

}  // namespace preempt
