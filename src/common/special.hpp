// Special functions needed by the wider distribution zoo (log-normal, gamma)
// and by the censored maximum-likelihood fitters.
//
// Everything here is implemented from scratch (no GSL/Boost): the normal
// quantile uses Acklam's rational approximation polished with one Halley
// step, and the regularized incomplete gamma uses the classic series /
// continued-fraction split at x = a + 1. Accuracies are verified against
// high-precision reference values in tests/test_special.cpp.
#pragma once

#include <cstddef>

namespace preempt {

/// Standard normal density φ(x).
double normal_pdf(double x) noexcept;

/// Standard normal CDF Φ(x), accurate in both tails (erfc-based).
double normal_cdf(double x) noexcept;

/// Inverse standard normal CDF Φ⁻¹(p) for p in (0, 1).
/// Returns ∓infinity at p = 0 / 1; NaN outside [0, 1].
double normal_quantile(double p) noexcept;

/// Inverse error function, erf⁻¹(x) for x in (-1, 1).
double erf_inv(double x) noexcept;

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// ln Γ(x) for x > 0 (thin wrapper so callers do not reach for <cmath>
/// directly and tests can pin the accuracy contract in one place).
double log_gamma(double x);

/// Digamma ψ(x) = d/dx ln Γ(x) for x > 0 — asymptotic series after argument
/// shifting. Used by the Weibull/Gamma MLE score equations.
double digamma(double x);

}  // namespace preempt
