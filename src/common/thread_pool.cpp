#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"

namespace preempt {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n = end - begin;
  const std::size_t max_chunks = std::max<std::size_t>(1, pool.thread_count() * 4);
  const std::size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);

  std::vector<std::future<void>> futures;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

}  // namespace preempt
