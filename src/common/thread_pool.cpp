#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"

namespace preempt {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t threads = pool.thread_count();
  if (grain == 0) {
    // ~8 chunks per executor (caller included): enough slack for stealing
    // to balance uneven bodies, few enough that cursor traffic is noise.
    grain = std::max<std::size_t>(1, n / ((threads + 1) * 8));
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Shared work-stealing state; lives on this frame, which outlives every
  // helper because we join all futures before returning.
  std::atomic<std::size_t> cursor{0};
  Mutex error_mutex{"thread_pool.parallel_for.error"};
  std::exception_ptr first_error;  // guarded by error_mutex

  const auto drain = [&] {
    for (;;) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      for (std::size_t i = lo; i < hi; ++i) {
        try {
          body(i);
        } catch (...) {
          // Keep driving the range: bodies reference caller-owned state,
          // so every index must run before the caller's frame unwinds.
          const LockGuard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }
  };

  // The caller is an executor too; helpers beyond chunks-1 could never get
  // a chunk, so don't pay their submit cost. A helper that wakes up late
  // finds the cursor exhausted and returns immediately.
  std::vector<std::future<void>> helpers;
  const std::size_t helper_count = std::min(threads, chunks - 1);
  helpers.reserve(helper_count);
  for (std::size_t h = 0; h < helper_count; ++h) helpers.push_back(pool.submit(drain));
  drain();
  for (auto& f : helpers) f.get();  // drain() itself never throws
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

}  // namespace preempt
