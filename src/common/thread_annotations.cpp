// Global lock-acquisition-order checker behind preempt::Mutex.
//
// Every acquisition while other mutexes are held records directed edges
// "held-name -> acquired-name" in a process-wide order graph. An acquisition
// whose edge would close a cycle is an ordering inversion — some interleaving
// of the recorded acquisitions deadlocks — so the checker aborts right there
// with both names and the acquiring thread's held stack, turning a
// once-a-month production hang into a deterministic unit-test failure.
//
// Edges are keyed by mutex *name*, not instance: names survive the instance
// (a destroyed/reconstructed BagJobQueue keeps its history) and make the
// abort message meaningful. The flip side is that edges between two
// same-named instances are ignored — two different stores locked in both
// orders would be a real (if exotic) deadlock the checker stays silent on;
// give such mutexes distinct names if that pattern ever appears.
//
// Cost when disabled: one relaxed atomic load per lock/unlock. The tier-1
// RelWithDebInfo build compiles with NDEBUG, so the checker defaults off
// there; debug builds default on, and tests/tools can force it either way.

#include "common/thread_annotations.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

namespace preempt::lockorder {

namespace {

#ifdef NDEBUG
constexpr bool kDefaultEnabled = false;
#else
constexpr bool kDefaultEnabled = true;
#endif

std::atomic<bool> g_enabled{kDefaultEnabled};

/// The order graph. Leaked on purpose: file-scope mutexes (common/log.cpp's,
/// for one) unlock during static destruction, after a function-local static
/// here would already be gone.
struct OrderGraph {
  std::mutex mutex;  // raw by necessity: the checker cannot check itself
  std::map<std::string, std::set<std::string>> edges;

  /// True when `to` is reachable from `from` (DFS over recorded edges).
  bool reachable(const std::string& from, const std::string& to) const {
    std::vector<const std::string*> stack{&from};
    std::set<std::string> seen;
    while (!stack.empty()) {
      const std::string& node = *stack.back();
      stack.pop_back();
      if (node == to) return true;
      if (!seen.insert(node).second) continue;
      const auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (const std::string& next : it->second) stack.push_back(&next);
    }
    return false;
  }
};

OrderGraph& graph() {
  static OrderGraph* g = new OrderGraph;
  return *g;
}

/// This thread's held mutexes, acquisition order. Stores names (not Mutex*):
/// only names are needed for edges and diagnostics, and a name outlives the
/// instance. Identity uses the instance pointer so release can pop the right
/// entry when several held mutexes share a name.
struct Held {
  const void* id;
  const char* name;
};

/// Fixed-capacity on purpose: a trivially destructible thread_local has no
/// destructor to run, so the stack stays usable during process exit, where
/// glibc destroys all thread_locals *before* static destructors run — a
/// static destructor that takes a Mutex (the log sink does) would otherwise
/// push into a destroyed std::vector and corrupt the heap. Acquisitions
/// beyond capacity are simply not tracked (release tolerates the miss);
/// sixteen genuinely nested distinct locks would be a bug in its own right.
struct HeldStack {
  static constexpr std::size_t kCapacity = 16;
  Held items[kCapacity];
  std::size_t size = 0;
};

HeldStack& held_stack() {
  static_assert(std::is_trivially_destructible_v<HeldStack>);
  thread_local HeldStack stack;
  return stack;
}

[[noreturn]] void abort_inversion(const char* acquiring, const char* held,
                                  const HeldStack& stack) {
  std::fprintf(stderr,
               "preempt: lock-order inversion: acquiring \"%s\" while holding \"%s\", "
               "but \"%s\" -> ... -> \"%s\" was the previously established order.\n",
               acquiring, held, acquiring, held);
  std::fprintf(stderr, "preempt: this thread's held stack (oldest first):");
  for (std::size_t i = 0; i < stack.size; ++i) std::fprintf(stderr, " \"%s\"", stack.items[i].name);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void set_enabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void reset_for_test() {
  OrderGraph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mutex);
  g.edges.clear();
}

void on_acquire(const Mutex& m) {
  HeldStack& stack = held_stack();
  if (enabled() && stack.size > 0) {
    for (std::size_t i = 0; i < stack.size; ++i) {
      if (stack.items[i].id == &m) {  // relocking a non-recursive mutex: guaranteed deadlock
        std::fprintf(stderr, "preempt: recursive lock of mutex \"%s\" on one thread.\n",
                     m.name());
        std::fflush(stderr);
        std::abort();
      }
    }
    OrderGraph& g = graph();
    const std::lock_guard<std::mutex> lock(g.mutex);
    const std::string acquiring(m.name());
    for (std::size_t i = 0; i < stack.size; ++i) {
      const std::string held(stack.items[i].name);
      if (held == acquiring) continue;  // same-named pair: see header comment
      // Adding held -> acquiring: if acquiring already reaches held, the
      // edge closes a cycle — abort before anyone can deadlock on it.
      if (g.reachable(acquiring, held)) abort_inversion(m.name(), stack.items[i].name, stack);
      g.edges[held].insert(acquiring);
    }
  }
  if (stack.size < HeldStack::kCapacity) stack.items[stack.size++] = Held{&m, m.name()};
}

void on_release(const Mutex& m) {
  HeldStack& stack = held_stack();
  // Locks are usually released LIFO, but unique_lock-style code may not; pop
  // the most recent matching entry. A miss is fine — the stack may predate a
  // set_enabled(true) or have overflowed capacity — releases are bookkeeping
  // only, never an error.
  for (std::size_t i = stack.size; i > 0; --i) {
    if (stack.items[i - 1].id == &m) {
      for (std::size_t j = i - 1; j + 1 < stack.size; ++j) stack.items[j] = stack.items[j + 1];
      --stack.size;
      return;
    }
  }
}

}  // namespace preempt::lockorder
