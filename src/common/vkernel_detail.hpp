// Shared internals of the vectorized math kernels: the polynomial
// coefficients and the per-path batched entry points.
//
// Every constant here is consumed by the scalar reference (vkernel.cpp) AND
// the SSE2/AVX2 translation units; keeping them in one place is what makes
// "same polynomial, same operation order per lane" checkable by reading one
// file. The exp reduction and rational are Cephes-style (e^r as
// 1 + 2rP(r²)/(Q(r²) − rP(r²)) after a two-part ln2 Cody–Waite reduction);
// the log core is the fdlibm remez polynomial in s = f/(2+f). Do not
// "simplify" an expression here or in one path only — bit-identity across
// paths is asserted by tests/test_vkernel.cpp and relied on by every
// sample_many golden test.
#pragma once

#include <bit>
#include <cstdint>

namespace preempt::vk::detail {

// ------------------------------------------------------------------- exp
// Valid domain of the core: [kExpMin, kExpMax]; outside, exp saturates.
inline constexpr double kLog2E = 1.4426950408889634073599;     // log2(e)
inline constexpr double kLn2Hi = 6.93145751953125e-1;          // ln2 head
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;    // ln2 tail
inline constexpr double kExpMax = 709.782712893383996843;      // ln(DBL_MAX)
inline constexpr double kExpMin = -745.133219101941108420;     // ln(2^-1075)
inline constexpr double kExpP0 = 1.26177193074810590878e-4;
inline constexpr double kExpP1 = 3.02994407707441961300e-2;
inline constexpr double kExpP2 = 9.99999999999999999910e-1;
inline constexpr double kExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kExpQ3 = 2.00000000000000000005e0;
/// |x| below this, expm1 uses the rational directly (no reduction, no
/// cancellation); above, it pays the one-ulp-ish exp(x) − 1.
inline constexpr double kExpm1Bound = 0.34657359027997265471;  // ln2 / 2

/// 2^n for an integer-valued double n with n + 1023 in (0, 2047) — a bare
/// exponent-field construction, exact by definition. exp() applies it twice
/// (2^⌊k/2⌋ then 2^(k−⌊k/2⌋)) so even subnormal results come out of two
/// ordinary multiplies instead of a per-lane underflow branch.
inline double pow2i(double n) noexcept {
  return std::bit_cast<double>((static_cast<std::int64_t>(n) + 1023) << 52);
}

// ------------------------------------------------------------------- log
// fdlibm e_log: x = 2^k (1+f) with 1+f in [√2/2·2, √2)·... i.e. mantissa in
// [1, 2) halved above √2; then ln(1+f) via s = f/(2+f).
inline constexpr double kLogLn2Hi = 6.93147180369123816490e-1;
inline constexpr double kLogLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kSqrt2 = 1.41421356237309514547;
inline constexpr double kLg1 = 6.666666666666735130e-1;
inline constexpr double kLg2 = 3.999999999940941908e-1;
inline constexpr double kLg3 = 2.857142874366239149e-1;
inline constexpr double kLg4 = 2.222219843214978396e-1;
inline constexpr double kLg5 = 1.818357216161805012e-1;
inline constexpr double kLg6 = 1.531383769920937332e-1;
inline constexpr double kLg7 = 1.479819860511658591e-1;
/// Outside [kLog1pLo, kLog1pHi] = [√2/2 − 1, √2 − 1], log1p(x) falls back
/// to log(1 + x); inside, 1 + x is already a valid reduction so the log
/// core runs on f = x directly with no rounding of the sum.
inline constexpr double kLog1pLo = -0.29289321881345247560;
inline constexpr double kLog1pHi = 0.41421356237309514547;
inline constexpr double kDblMinNormal = 2.2250738585072014e-308;
inline constexpr std::uint64_t kMantissaMask = 0x000FFFFFFFFFFFFFull;
inline constexpr std::uint64_t kOneExpBits = 0x3FF0000000000000ull;  // 1.0
inline constexpr std::int64_t kSubnormalShift = 54;  ///< prescale 2^54

// ------------------------------------------------- per-path batched entry
// Each *_many_<path> writes out[i] = <scalar kernel>(x[i]) bit-for-bit.
// The SIMD definitions live in vkernel_sse2.cpp / vkernel_avx2.cpp and are
// compiled empty when PREEMPT_VKERNEL_SIMD is off.

void exp_many_scalar(const double* x, double* out, std::size_t n) noexcept;
void log_many_scalar(const double* x, double* out, std::size_t n) noexcept;
void expm1_many_scalar(const double* x, double* out, std::size_t n) noexcept;
void log1p_many_scalar(const double* x, double* out, std::size_t n) noexcept;

#if defined(PREEMPT_VKERNEL_SIMD)
void exp_many_sse2(const double* x, double* out, std::size_t n) noexcept;
void log_many_sse2(const double* x, double* out, std::size_t n) noexcept;
void expm1_many_sse2(const double* x, double* out, std::size_t n) noexcept;
void log1p_many_sse2(const double* x, double* out, std::size_t n) noexcept;

void exp_many_avx2(const double* x, double* out, std::size_t n) noexcept;
void log_many_avx2(const double* x, double* out, std::size_t n) noexcept;
void expm1_many_avx2(const double* x, double* out, std::size_t n) noexcept;
void log1p_many_avx2(const double* x, double* out, std::size_t n) noexcept;
#endif

}  // namespace preempt::vk::detail
