// Descriptive statistics over samples (means, quantiles, ECDF support).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace preempt {

/// Arithmetic mean; requires a non-empty sample.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); requires n >= 2.
double variance(std::span<const double> xs);

/// Unbiased sample standard deviation; requires n >= 2.
double stddev(std::span<const double> xs);

/// Linear-interpolation quantile (type 7, the numpy/R default), q in [0, 1].
/// The input need not be sorted; a sorted copy is made.
double quantile(std::span<const double> xs, double q);

/// Median shortcut.
inline double median(std::span<const double> xs) { return quantile(xs, 0.5); }

/// Min/max of a non-empty sample.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Pearson correlation of two equal-length samples (n >= 2).
double pearson_correlation(std::span<const double> xs, std::span<const double> ys);

/// Ordinary least squares line y = a + b x; returns {intercept a, slope b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination of the fit
};
LinearFit linear_regression(std::span<const double> xs, std::span<const double> ys);

/// Summary bundle used by trace analysis reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};
Summary summarize(std::span<const double> xs);

}  // namespace preempt
