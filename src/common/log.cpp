#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.hpp"

namespace preempt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex{"log.sink"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const LockGuard lock(g_mutex);
  std::fprintf(stderr, "[preempt %s] %s\n", level_name(level), message.c_str());
}

}  // namespace preempt
