#include "common/math.hpp"

#include "common/error.hpp"

namespace preempt {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  PREEMPT_REQUIRE(n >= 1, "linspace needs at least one point");
  std::vector<double> out;
  out.reserve(n);
  if (n == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out.push_back(lo + step * static_cast<double>(i));
  out.back() = hi;  // avoid rounding drift on the last point
  return out;
}

}  // namespace preempt
