// Minimal dense linear algebra for the nonlinear least-squares fitters.
//
// The fit problems in this library are tiny (2-4 parameters, <= a few hundred
// residuals), so a simple row-major matrix with Cholesky and Householder-QR
// solvers is the right tool; no external BLAS needed.
#pragma once

#include <cstddef>
#include <vector>

namespace preempt {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// this^T * this (Gram matrix), used to form normal equations.
  Matrix gram() const;

  /// this^T * v for a vector with rows() entries.
  std::vector<double> transpose_times(const std::vector<double>& v) const;

  /// this * v for a vector with cols() entries.
  std::vector<double> times(const std::vector<double>& v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-definite A via Cholesky.
/// Throws NumericError if A is not (numerically) SPD.
std::vector<double> cholesky_solve(Matrix a, std::vector<double> b);

/// Least-squares solve min ||A x - b||_2 via Householder QR with column checks.
/// Requires rows >= cols and full column rank; throws NumericError otherwise.
std::vector<double> qr_least_squares(Matrix a, std::vector<double> b);

}  // namespace preempt
