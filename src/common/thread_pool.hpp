// Fixed-size thread pool and a blocking parallel_for.
//
// The Monte-Carlo validators and the checkpoint DP sweep are embarrassingly
// parallel; this pool keeps them deterministic (work is partitioned statically
// per index range, and RNG streams are forked per chunk by the callers).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace preempt {

/// Simple FIFO thread pool. Tasks are std::function<void()>; use submit() for
/// futures or parallel_for for index ranges.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future observes exceptions thrown by it.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const LockGuard lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_{"thread_pool.queue"};
  std::queue<std::function<void()>> tasks_ PREEMPT_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ PREEMPT_GUARDED_BY(mutex_) = false;
};

/// Run body(i) for i in [begin, end) across the pool, blocking until done.
///
/// Work-stealing dispatch: the range is cut into contiguous chunks of
/// `grain` indices and an atomic cursor hands chunks to whichever executor
/// is free next — the caller participates alongside at most
/// min(threads, chunks-1) pool helpers, so a saturated (or single-core)
/// pool degrades to the plain inline loop instead of parking the caller on
/// futures while one worker does everything. Which thread runs which chunk
/// is scheduling-dependent; every index still runs exactly once, so bodies
/// whose work is a pure function of the index (the engine's chunk->stream
/// mapping) stay deterministic.
///
/// grain = 0 autotunes to ~8 chunks per executor. Exceptions from the body
/// are rethrown (first recorded wins) only after the whole range has been
/// driven — bodies reference caller-owned state, so no chunk is abandoned.
/// Do not call from inside a pool task: helper futures joined on the sole
/// worker would deadlock.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain = 0);

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t grain = 0);

}  // namespace preempt
