#include "common/vkernel.hpp"

#include <atomic>
#include <cmath>
#include <limits>

#include "common/vkernel_detail.hpp"

namespace preempt::vk {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kQnan = std::numeric_limits<double>::quiet_NaN();

}  // namespace

// ----------------------------------------------------------- scalar kernels
// These are the lane references: each SIMD lane performs exactly this
// operation sequence (the special-case branches become mask blends, which is
// the same selection). Changing an expression here without mirroring it in
// vkernel_sse2.cpp / vkernel_avx2.cpp breaks cross-path bit-identity.

double exp(double x) noexcept {
  if (x != x) return x;  // NaN propagates verbatim (blend, not arithmetic)
  if (x > detail::kExpMax) return kInf;
  if (x < detail::kExpMin) return 0.0;
  const double k = std::floor(detail::kLog2E * x + 0.5);
  const double r = (x - k * detail::kLn2Hi) - k * detail::kLn2Lo;
  const double r2 = r * r;
  const double px =
      r * ((detail::kExpP0 * r2 + detail::kExpP1) * r2 + detail::kExpP2);
  const double qx =
      ((detail::kExpQ0 * r2 + detail::kExpQ1) * r2 + detail::kExpQ2) * r2 +
      detail::kExpQ3;
  const double y = 1.0 + 2.0 * (px / (qx - px));
  const double kh = std::floor(k * 0.5);
  return y * detail::pow2i(kh) * detail::pow2i(k - kh);
}

double log(double x) noexcept {
  if (x != x) return x;
  if (x <= 0.0) return x == 0.0 ? -kInf : kQnan;
  if (x == kInf) return x;
  double e = 0.0;
  double xs = x;
  if (xs < detail::kDblMinNormal) {  // subnormal: prescale into normal range
    xs *= 0x1p54;
    e = -static_cast<double>(detail::kSubnormalShift);
  }
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(xs);
  e += static_cast<double>(static_cast<std::int64_t>(bits >> 52)) - 1023.0;
  double m = std::bit_cast<double>((bits & detail::kMantissaMask) |
                                   detail::kOneExpBits);  // [1, 2)
  if (m >= detail::kSqrt2) {
    m *= 0.5;
    e += 1.0;
  }
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (detail::kLg2 + w * (detail::kLg4 + w * detail::kLg6));
  const double t2 =
      z * (detail::kLg1 +
           w * (detail::kLg3 + w * (detail::kLg5 + w * detail::kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  return e * detail::kLogLn2Hi -
         ((hfsq - (s * (hfsq + r) + e * detail::kLogLn2Lo)) - f);
}

double expm1(double x) noexcept {
  if (std::abs(x) < detail::kExpm1Bound) {
    // Same rational as exp without the 1 +: e^x − 1 = 2xP(x²)/(Q(x²) − xP(x²)).
    const double r2 = x * x;
    const double px =
        x * ((detail::kExpP0 * r2 + detail::kExpP1) * r2 + detail::kExpP2);
    const double qx =
        ((detail::kExpQ0 * r2 + detail::kExpQ1) * r2 + detail::kExpQ2) * r2 +
        detail::kExpQ3;
    return 2.0 * (px / (qx - px));
  }
  return vk::exp(x) - 1.0;  // |result| >= 0.29: the subtraction is benign
}

double log1p(double x) noexcept {
  if (x != x) return x;
  if (x > detail::kLog1pHi || x < detail::kLog1pLo) return vk::log(1.0 + x);
  // 1 + x is already inside the log reduction band, so run the core on
  // f = x directly — no rounded 1 + x, no cancellation (k = 0 case).
  const double f = x;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (detail::kLg2 + w * (detail::kLg4 + w * detail::kLg6));
  const double t2 =
      z * (detail::kLg1 +
           w * (detail::kLg3 + w * (detail::kLg5 + w * detail::kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  return f - (hfsq - s * (hfsq + r));
}

namespace detail {

void exp_many_scalar(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = vk::exp(x[i]);
}

void log_many_scalar(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = vk::log(x[i]);
}

void expm1_many_scalar(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = vk::expm1(x[i]);
}

void log1p_many_scalar(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = vk::log1p(x[i]);
}

}  // namespace detail

// ---------------------------------------------------------------- dispatch

namespace {

using ManyFn = void (*)(const double*, double*, std::size_t) noexcept;

struct KernelTable {
  ManyFn exp_many;
  ManyFn log_many;
  ManyFn expm1_many;
  ManyFn log1p_many;
  Path path;
};

constexpr KernelTable kScalarTable = {
    detail::exp_many_scalar, detail::log_many_scalar,
    detail::expm1_many_scalar, detail::log1p_many_scalar, Path::kScalar};

KernelTable detect() noexcept {
#if defined(PREEMPT_VKERNEL_SIMD)
  if (__builtin_cpu_supports("avx2")) {
    return {detail::exp_many_avx2, detail::log_many_avx2,
            detail::expm1_many_avx2, detail::log1p_many_avx2, Path::kAvx2};
  }
  // SSE2 is part of the x86-64 baseline — always available here.
  return {detail::exp_many_sse2, detail::log_many_sse2,
          detail::expm1_many_sse2, detail::log1p_many_sse2, Path::kSse2};
#else
  return kScalarTable;
#endif
}

const KernelTable& simd_table() noexcept {
  static const KernelTable table = detect();
  return table;
}

std::atomic<bool> g_force_scalar{false};

const KernelTable& table() noexcept {
  return g_force_scalar.load(std::memory_order_relaxed) ? kScalarTable
                                                        : simd_table();
}

}  // namespace

Path active_path() noexcept { return table().path; }

const char* path_name(Path path) noexcept {
  switch (path) {
    case Path::kScalar: return "scalar";
    case Path::kSse2: return "sse2";
    case Path::kAvx2: return "avx2";
  }
  return "scalar";
}

bool simd_compiled() noexcept {
#if defined(PREEMPT_VKERNEL_SIMD)
  return true;
#else
  return false;
#endif
}

void force_scalar(bool on) noexcept {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

bool scalar_forced() noexcept {
  return g_force_scalar.load(std::memory_order_relaxed);
}

void exp_many(const double* x, double* out, std::size_t n) noexcept {
  table().exp_many(x, out, n);
}

void log_many(const double* x, double* out, std::size_t n) noexcept {
  table().log_many(x, out, n);
}

void expm1_many(const double* x, double* out, std::size_t n) noexcept {
  table().expm1_many(x, out, n);
}

void log1p_many(const double* x, double* out, std::size_t n) noexcept {
  table().log1p_many(x, out, n);
}

}  // namespace preempt::vk
