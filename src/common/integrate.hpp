// Numerical quadrature used by the reliability analysis and policies.
//
// The policy layer integrates t*f(t) over sub-intervals millions of times
// (DP checkpointing), so we provide both an adaptive Simpson routine for
// verification-grade accuracy and fixed-order Gauss–Legendre for speed.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace preempt {

/// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance `tol`.
/// Handles a > b by sign flip. Throws NumericError on non-finite values.
double integrate_adaptive(const std::function<double(double)>& f, double a, double b,
                          double tol = 1e-10, int max_depth = 40);

/// Nodes/weights for n-point Gauss–Legendre quadrature on [-1, 1].
/// Computed once by Newton iteration on Legendre polynomials and cached.
struct GaussLegendreRule {
  std::vector<double> nodes;    ///< abscissae on [-1, 1]
  std::vector<double> weights;  ///< matching weights
};
const GaussLegendreRule& gauss_legendre_rule(std::size_t n);

/// Fixed n-point Gauss–Legendre quadrature of f over [a, b].
/// Exact for polynomials of degree <= 2n-1; n=24 gives ~1e-14 relative error
/// on the smooth exponential-family integrands used in this library.
double integrate_gauss(const std::function<double(double)>& f, double a, double b,
                       std::size_t n = 24);

/// Composite Gauss–Legendre: split [a, b] into `segments` panels. Use when the
/// integrand has a sharp feature (e.g. the bathtub wall near the deadline).
double integrate_gauss_composite(const std::function<double(double)>& f, double a, double b,
                                 std::size_t segments, std::size_t n = 16);

/// Trapezoid rule over sampled data (xs strictly increasing).
double trapezoid(std::span<const double> xs, std::span<const double> ys);

}  // namespace preempt
