// Clang Thread Safety Analysis macros and the repo's annotated lock types.
//
// Every mutex in src/ is a preempt::Mutex (never a raw std::mutex — enforced
// by tools/lint_checks.py), so two layers of checking apply to all locking:
//
//  * statically, clang's -Wthread-safety analysis: members annotated
//    PREEMPT_GUARDED_BY(m) may only be touched while m is held, functions
//    annotated PREEMPT_REQUIRES(m) may only be called with m held, and the
//    scoped RAII types below tell the analysis where capabilities are
//    acquired and released. Under gcc (which has no such analysis) the
//    macros expand to nothing and Mutex/LockGuard behave exactly like their
//    std counterparts.
//
//  * dynamically, a global lock-acquisition-order checker (debug builds, or
//    whenever lockorder::set_enabled(true) is called): each Mutex carries a
//    name, every acquisition records "held -> acquiring" edges in a global
//    order graph, and an acquisition that would close a cycle — the classic
//    ABBA deadlock — aborts immediately, printing both mutex names and the
//    full held stack, instead of deadlocking some unlucky production run.
//
// CondVar is a std::condition_variable bridge that keeps the checker's
// held-stack honest across the release/reacquire inside wait(). It has no
// predicate overloads on purpose: a predicate lambda reading guarded state
// defeats the static analysis (clang cannot see that the lock is held inside
// the lambda body), so call sites spell the standard `while (!pred) wait();`
// loop where the analysis can verify every access.
#pragma once

#include <condition_variable>
#include <mutex>

// -------------------------------------------------------------- attributes

#if defined(__clang__) && defined(__has_attribute)
#define PREEMPT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PREEMPT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Class attribute: instances are lockable capabilities.
#define PREEMPT_CAPABILITY(name) PREEMPT_THREAD_ANNOTATION(capability(name))
/// Class attribute: RAII object that holds a capability for its lifetime.
#define PREEMPT_SCOPED_CAPABILITY PREEMPT_THREAD_ANNOTATION(scoped_lockable)
/// Member attribute: reads/writes require holding `x`.
#define PREEMPT_GUARDED_BY(x) PREEMPT_THREAD_ANNOTATION(guarded_by(x))
/// Member attribute: the pointee (not the pointer) is guarded by `x`.
#define PREEMPT_PT_GUARDED_BY(x) PREEMPT_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function attribute: callers must hold the listed capabilities.
#define PREEMPT_REQUIRES(...) \
  PREEMPT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function attribute: callers must NOT hold the listed capabilities.
#define PREEMPT_EXCLUDES(...) PREEMPT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function attribute: acquires the listed capabilities (this object when empty).
#define PREEMPT_ACQUIRE(...) \
  PREEMPT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function attribute: releases the listed capabilities (this object when empty).
#define PREEMPT_RELEASE(...) \
  PREEMPT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function attribute: acquires the capability iff the return value is `ok`.
#define PREEMPT_TRY_ACQUIRE(ok, ...) \
  PREEMPT_THREAD_ANNOTATION(try_acquire_capability(ok, ##__VA_ARGS__))
/// Function attribute: returns a reference to the capability guarding it.
#define PREEMPT_RETURN_CAPABILITY(x) PREEMPT_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: the function is exempt from the analysis (constructor-only
/// helpers, intentionally unusual locking). Always pair with a comment.
#define PREEMPT_NO_THREAD_SAFETY_ANALYSIS \
  PREEMPT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace preempt {

class Mutex;

// ------------------------------------------------------ lock-order checker

namespace lockorder {

/// Turn the global checker on/off (process-wide). Defaults to on in debug
/// builds (NDEBUG not defined), off otherwise; tests force it on. Enable
/// before threads start contending or the held-stack may be incomplete.
void set_enabled(bool enabled) noexcept;
bool enabled() noexcept;

/// Drop every recorded ordering edge (tests only; not thread-safe against
/// concurrent lock traffic).
void reset_for_test();

/// Called by Mutex/CondVar around every acquisition/release. An acquisition
/// that closes a cycle in the order graph aborts with both mutex names.
void on_acquire(const Mutex& m);
void on_release(const Mutex& m);

}  // namespace lockorder

// ------------------------------------------------------------- lock types

/// std::mutex with a stable name (for deadlock diagnostics) plus static and
/// dynamic checking. Same blocking semantics as std::mutex.
class PREEMPT_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "unnamed") noexcept : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PREEMPT_ACQUIRE() {
    lockorder::on_acquire(*this);  // before blocking: an inversion aborts, not deadlocks
    raw_.lock();
  }

  void unlock() PREEMPT_RELEASE() {
    raw_.unlock();
    lockorder::on_release(*this);
  }

  bool try_lock() PREEMPT_TRY_ACQUIRE(true) {
    if (!raw_.try_lock()) return false;
    lockorder::on_acquire(*this);  // cannot block, but keeps the held stack honest
    return true;
  }

  const char* name() const noexcept { return name_; }

  /// Underlying std::mutex (CondVar bridging only).
  std::mutex& native() noexcept { return raw_; }

 private:
  std::mutex raw_;
  const char* name_;
};

/// std::lock_guard equivalent over Mutex.
class PREEMPT_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) PREEMPT_ACQUIRE(m) : mutex_(m) { mutex_.lock(); }
  ~LockGuard() PREEMPT_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock equivalent over Mutex; the form CondVar waits on.
/// Always constructed locked; unlock()/lock() may hand the capability back
/// and forth mid-scope.
class PREEMPT_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) PREEMPT_ACQUIRE(m) : mutex_(m) {
    mutex_.lock();
    owns_ = true;
  }
  ~UniqueLock() PREEMPT_RELEASE() {
    if (owns_) mutex_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() PREEMPT_ACQUIRE() {
    mutex_.lock();
    owns_ = true;
  }
  void unlock() PREEMPT_RELEASE() {
    mutex_.unlock();
    owns_ = false;
  }
  bool owns_lock() const noexcept { return owns_; }
  Mutex& mutex() noexcept PREEMPT_RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  friend class CondVar;
  Mutex& mutex_;
  bool owns_ = false;
};

/// Condition variable over UniqueLock. No predicate overloads — spell the
/// `while (!pred) wait(lock);` loop at the call site so clang's analysis can
/// check the guarded reads inside the predicate (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release, sleep, reacquire. The checker sees the mutex leave
  /// and re-enter the held stack, so ordering stays accurate across waits.
  void wait(UniqueLock& lock) {
    lockorder::on_release(lock.mutex_);
    std::unique_lock<std::mutex> native(lock.mutex_.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
    lockorder::on_acquire(lock.mutex_);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(UniqueLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    lockorder::on_release(lock.mutex_);
    std::unique_lock<std::mutex> native(lock.mutex_.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    lockorder::on_acquire(lock.mutex_);
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    lockorder::on_release(lock.mutex_);
    std::unique_lock<std::mutex> native(lock.mutex_.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    lockorder::on_acquire(lock.mutex_);
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace preempt
