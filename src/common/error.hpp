// Error types and lightweight contract macros used across libpreempt.
//
// Policy (per C++ Core Guidelines I.5/I.6/E.*): public API preconditions are
// checked and reported via exceptions derived from `preempt::Error`; internal
// invariants use PREEMPT_CHECK which also throws (never aborts) so that the
// library is safe to embed in long-running services.
#pragma once

#include <stdexcept>
#include <string>

namespace preempt {

/// Base class for all libpreempt errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or produced non-finite values.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// File/CSV input-output failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// The discrete-event simulator reached an inconsistent state.
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* cond, const char* file, int line,
                                                const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": precondition failed (" + cond + "): " + msg);
}
[[noreturn]] inline void throw_internal(const char* cond, const char* file, int line,
                                        const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": internal invariant failed (" +
              cond + "): " + msg);
}
}  // namespace detail

}  // namespace preempt

/// Validate a documented precondition of a public API; throws InvalidArgument.
#define PREEMPT_REQUIRE(cond, msg)                                                   \
  do {                                                                               \
    if (!(cond)) ::preempt::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validate an internal invariant; throws preempt::Error.
#define PREEMPT_CHECK(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) ::preempt::detail::throw_internal(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
