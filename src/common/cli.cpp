#include "common/cli.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace preempt {

FlagSet& FlagSet::declare(const std::string& name, Kind kind, std::string default_value,
                          std::string help, bool required) {
  PREEMPT_REQUIRE(!name.empty() && name[0] != '-', "flag names are given without dashes");
  PREEMPT_REQUIRE(specs_.find(name) == specs_.end(), "duplicate flag declaration: " + name);
  specs_[name] = Spec{kind, std::move(default_value), std::move(help), required};
  order_.push_back(name);
  return *this;
}

FlagSet& FlagSet::add_string(const std::string& name, const std::string& default_value,
                             const std::string& help) {
  return declare(name, Kind::kString, default_value, help, false);
}

FlagSet& FlagSet::add_double(const std::string& name, double default_value,
                             const std::string& help) {
  return declare(name, Kind::kDouble, fmt_general(default_value, 12), help, false);
}

FlagSet& FlagSet::add_int(const std::string& name, long long default_value,
                          const std::string& help) {
  return declare(name, Kind::kInt, std::to_string(default_value), help, false);
}

FlagSet& FlagSet::add_bool(const std::string& name, const std::string& help) {
  return declare(name, Kind::kBool, "false", help, false);
}

FlagSet& FlagSet::add_required(const std::string& name, const std::string& help) {
  return declare(name, Kind::kString, "", help, true);
}

void FlagSet::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw InvalidArgument(program_ + ": unknown flag --" + name + "\n" + usage());
    }
    if (it->second.kind == Kind::kBool) {
      if (!has_value) value = "true";
    } else if (!has_value) {
      if (i + 1 >= args.size()) {
        throw InvalidArgument(program_ + ": flag --" + name + " needs a value");
      }
      value = args[++i];
    }
    values_[name] = value;
  }
  for (const auto& [name, s] : specs_) {
    if (s.required && values_.find(name) == values_.end()) {
      throw InvalidArgument(program_ + ": required flag --" + name + " missing\n" + usage());
    }
  }
  // Validate typed values eagerly so errors point at the command line, not at
  // a later accessor.
  for (const auto& [name, value] : values_) {
    const Spec& s = specs_.at(name);
    try {
      if (s.kind == Kind::kDouble) (void)parse_double(value);
      if (s.kind == Kind::kInt) (void)parse_int(value);
      if (s.kind == Kind::kBool) {
        const std::string v = to_lower(value);
        if (v != "true" && v != "false" && v != "1" && v != "0") {
          throw InvalidArgument("not a boolean");
        }
      }
    } catch (const Error&) {
      throw InvalidArgument(program_ + ": bad value for --" + name + ": '" + value + "'");
    }
  }
}

const FlagSet::Spec& FlagSet::spec(const std::string& name) const {
  const auto it = specs_.find(name);
  PREEMPT_REQUIRE(it != specs_.end(), "undeclared flag queried: " + name);
  return it->second;
}

std::string FlagSet::get_string(const std::string& name) const {
  (void)spec(name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : specs_.at(name).default_value;
}

double FlagSet::get_double(const std::string& name) const { return parse_double(get_string(name)); }

long long FlagSet::get_int(const std::string& name) const {
  return static_cast<long long>(parse_int(get_string(name)));
}

bool FlagSet::get_bool(const std::string& name) const {
  const std::string v = to_lower(get_string(name));
  return v == "true" || v == "1";
}

bool FlagSet::is_set(const std::string& name) const {
  (void)spec(name);
  return values_.find(name) != values_.end();
}

std::string FlagSet::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  std::size_t width = 0;
  for (const auto& name : order_) width = std::max(width, name.size());
  for (const auto& name : order_) {
    const Spec& s = specs_.at(name);
    os << "  --" << name << std::string(width - name.size() + 2, ' ') << s.help;
    if (s.required) {
      os << " (required)";
    } else if (s.kind != Kind::kBool && !s.default_value.empty()) {
      os << " (default: " << s.default_value << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace preempt
