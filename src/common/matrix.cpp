#include "common/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace preempt {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) s += (*this)(r, i) * (*this)(r, j);
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

std::vector<double> Matrix::transpose_times(const std::vector<double>& v) const {
  PREEMPT_REQUIRE(v.size() == rows_, "transpose_times dimension mismatch");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out[c] += (*this)(r, c) * v[r];
  }
  return out;
}

std::vector<double> Matrix::times(const std::vector<double>& v) const {
  PREEMPT_REQUIRE(v.size() == cols_, "times dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

std::vector<double> cholesky_solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  PREEMPT_REQUIRE(a.cols() == n, "cholesky_solve needs a square matrix");
  PREEMPT_REQUIRE(b.size() == n, "cholesky_solve rhs dimension mismatch");
  // In-place lower Cholesky factorisation.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) {
      throw NumericError("cholesky_solve: matrix is not positive definite");
    }
    const double l = std::sqrt(d);
    a(j, j) = l;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / l;
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a(k, ii) * b[k];
    b[ii] = s / a(ii, ii);
  }
  return b;
}

std::vector<double> qr_least_squares(Matrix a, std::vector<double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  PREEMPT_REQUIRE(m >= n, "qr_least_squares needs rows >= cols");
  PREEMPT_REQUIRE(b.size() == m, "qr_least_squares rhs dimension mismatch");
  // Householder QR, applying reflectors to b as we go.
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (!(norm > 0.0) || !std::isfinite(norm)) {
      throw NumericError(std::string("qr_least_squares: rank-deficient column ") + std::to_string(k));
    }
    if (a(k, k) > 0.0) norm = -norm;
    // v = x - norm*e1 stored in-place below the diagonal; beta = 2/(v^T v).
    std::vector<double> v(m - k);
    v[0] = a(k, k) - norm;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = a(i, k);
    double vtv = 0.0;
    for (double x : v) vtv += x * x;
    if (vtv == 0.0) throw NumericError("qr_least_squares: zero Householder vector");
    const double beta = 2.0 / vtv;
    // Apply reflector to remaining columns.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * a(i, j);
      const double scale = beta * dot;
      for (std::size_t i = k; i < m; ++i) a(i, j) -= scale * v[i - k];
    }
    // And to b.
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * b[i];
    const double scale = beta * dot;
    for (std::size_t i = k; i < m; ++i) b[i] -= scale * v[i - k];
    a(k, k) = norm;
  }
  // Back substitution on the upper-triangular R (stored in a's top block).
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    const double d = a(ii, ii);
    if (d == 0.0 || !std::isfinite(d)) {
      throw NumericError("qr_least_squares: singular R");
    }
    x[ii] = s / d;
  }
  return x;
}

}  // namespace preempt
