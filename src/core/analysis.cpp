#include "core/analysis.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/string_util.hpp"

namespace preempt::core {

DistributionComparison compare_distributions(std::span<const double> lifetimes,
                                             double horizon_hours, ComparisonScope scope) {
  DistributionComparison out{dist::EmpiricalDistribution(lifetimes), {}};
  const auto pts = out.empirical.ecdf_points(dist::EcdfConvention::kHazen);
  out.fits = scope == ComparisonScope::kPaper
                 ? fit::fit_all_families(pts.t, pts.f, horizon_hours)
                 : fit::fit_extended_families(pts.t, pts.f, horizon_hours);
  return out;
}

Table DistributionComparison::summary_table() const {
  Table table({"model", "params", "sse", "rmse", "r2", "ks", "aic"},
              "Fit quality vs empirical CDF");
  for (const auto& fr : fits) {
    std::vector<std::string> params;
    const auto names = fr.distribution->parameter_names();
    const auto values = fr.distribution->parameters();
    for (std::size_t i = 0; i < names.size(); ++i) {
      params.push_back(names[i] + "=" + fmt_general(values[i], 4));
    }
    table.add_row({fr.distribution->name(), join(params, " "), fmt_general(fr.gof.sse, 4),
                   fmt_general(fr.gof.rmse, 4), fmt_double(fr.gof.r2, 4),
                   fmt_double(empirical.ks_distance(*fr.distribution), 4),
                   fmt_double(fr.gof.aic, 1)});
  }
  return table;
}

Table DistributionComparison::cdf_table(std::size_t points) const {
  PREEMPT_REQUIRE(points >= 2, "cdf table needs at least two points");
  std::vector<std::string> header = {"t_hours", "empirical"};
  for (const auto& fr : fits) header.push_back(fr.distribution->name());
  Table table(std::move(header), "CDF of time to preemption");
  const double hi = empirical.support_end();
  for (double t : linspace(0.0, hi, points)) {
    std::vector<std::string> row = {fmt_double(t, 2), fmt_double(empirical.cdf(t), 4)};
    for (const auto& fr : fits) row.push_back(fmt_double(fr.distribution->cdf(t), 4));
    table.add_row(std::move(row));
  }
  return table;
}

Table DistributionComparison::pdf_table(std::size_t points) const {
  PREEMPT_REQUIRE(points >= 2, "pdf table needs at least two points");
  std::vector<std::string> header = {"t_hours", "empirical_hist"};
  for (const auto& fr : fits) header.push_back(fr.distribution->name());
  Table table(std::move(header), "Probability density (Fig. 1 inset)");
  const double hi = empirical.support_end();
  for (double t : linspace(0.0, hi, points)) {
    std::vector<std::string> row = {fmt_double(t, 2), fmt_double(empirical.pdf(t), 4)};
    for (const auto& fr : fits) row.push_back(fmt_double(fr.distribution->pdf(t), 4));
    table.add_row(std::move(row));
  }
  return table;
}

const fit::FitResult& DistributionComparison::best() const {
  PREEMPT_REQUIRE(!fits.empty(), "no fits available");
  const auto it = std::min_element(fits.begin(), fits.end(), [](const auto& a, const auto& b) {
    return a.gof.sse < b.gof.sse;
  });
  return *it;
}

PhaseReport phase_report(const dist::BathtubDistribution& d) {
  PhaseReport report;
  report.infant_end_hours = d.infant_phase_end();
  report.deadline_start_hours = d.deadline_phase_start();
  report.infant_hazard_per_hour = d.hazard(1e-6);
  const double mid = 0.5 * (report.infant_end_hours + report.deadline_start_hours);
  report.stable_hazard_per_hour = d.hazard(mid);
  return report;
}

}  // namespace preempt::core
