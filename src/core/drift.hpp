// Change-point monitoring for preemption behaviour (paper Sec. 8):
// "Our model allows detecting policy and phase changes by comparing observed
// data with model-predictions and detect change-points, and a long-running
// cloud service can continuously update the model based on recent preemption
// behavior."
//
// The detector keeps a sliding window of recent lifetimes and raises a drift
// alarm when the window's ECDF strays from the baseline model by more than a
// Kolmogorov-Smirnov threshold (default: the one-sample KS critical value
// c(alpha)/sqrt(n), with c = 1.36 ~ alpha = 0.05). On alarm, refit() builds a
// fresh model from the window — the paper's continuous-update loop.
#pragma once

#include <deque>

#include "core/model.hpp"

namespace preempt::core {

class DriftDetector {
 public:
  struct Options {
    std::size_t window = 120;       ///< lifetimes kept for comparison
    std::size_t min_samples = 30;   ///< don't alarm before this many samples
    /// c in the alarm threshold c / sqrt(n). 1.36 is the 5% one-sample KS
    /// critical value, valid when the baseline is the *true* law. When the
    /// baseline was itself fitted from a finite sample the test is
    /// anti-conservative (Lilliefors effect); raise c to ~1.8-2.0 then.
    double ks_critical = 1.36;
    double horizon_hours = 24.0;    ///< refit horizon
  };

  struct Status {
    bool drift = false;        ///< KS statistic above the threshold?
    double ks = 0.0;           ///< current KS distance window-vs-baseline
    double threshold = 0.0;    ///< c / sqrt(n) for the current window size
    std::size_t samples = 0;   ///< lifetimes currently in the window
  };

  explicit DriftDetector(PreemptionModel baseline) : DriftDetector(std::move(baseline), Options{}) {}
  DriftDetector(PreemptionModel baseline, Options options);

  const PreemptionModel& baseline() const noexcept { return baseline_; }
  const Options& options() const noexcept { return options_; }

  /// Feed one observed lifetime (hours); returns the updated status.
  Status observe(double lifetime_hours);

  /// Current status without adding an observation.
  Status status() const;

  /// Refit the baseline from the current window (requires >= min_samples);
  /// clears the window and resets the alarm. Returns the new baseline.
  const PreemptionModel& refit();

 private:
  PreemptionModel baseline_;
  Options options_;
  std::deque<double> window_;
};

}  // namespace preempt::core
