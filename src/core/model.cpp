#include "core/model.hpp"

#include "common/error.hpp"
#include "policy/running_time.hpp"

namespace preempt::core {

PreemptionModel PreemptionModel::fit(std::span<const double> lifetimes, double horizon_hours) {
  fit::FitResult result = fit::fit_bathtub_to_samples(lifetimes, horizon_hours);
  auto* bathtub = dynamic_cast<dist::BathtubDistribution*>(result.distribution.get());
  PREEMPT_CHECK(bathtub != nullptr, "bathtub fitter returned a non-bathtub distribution");
  return PreemptionModel(*bathtub, result.gof);
}

PreemptionModel PreemptionModel::from_params(const dist::BathtubParams& params) {
  return PreemptionModel(dist::BathtubDistribution(params), std::nullopt);
}

double PreemptionModel::expected_wasted_work(double job_hours) const {
  return policy::expected_wasted_work_single(dist_, job_hours);
}

double PreemptionModel::expected_makespan(double job_hours) const {
  return policy::expected_makespan(dist_, job_hours);
}

double PreemptionModel::expected_makespan_from_age(double start_age_hours,
                                                   double job_hours) const {
  return policy::expected_makespan_from_age(dist_, start_age_hours, job_hours);
}

double PreemptionModel::job_failure_probability(double start_age_hours, double job_hours) const {
  return policy::job_failure_probability(dist_, start_age_hours, job_hours);
}

policy::ReuseDecision PreemptionModel::reuse_decision(double vm_age_hours,
                                                      double job_hours) const {
  const policy::ModelDrivenScheduler scheduler(dist_.clone());
  return scheduler.decide(vm_age_hours, job_hours);
}

std::unique_ptr<policy::SchedulingPolicy> PreemptionModel::make_scheduler() const {
  return std::make_unique<policy::ModelDrivenScheduler>(dist_.clone());
}

policy::CheckpointDp PreemptionModel::make_checkpoint_dp(double job_hours,
                                                         policy::CheckpointConfig config) const {
  return policy::CheckpointDp(dist_, job_hours, config);
}

}  // namespace preempt::core
