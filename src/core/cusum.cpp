#include "core/cusum.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt::core {

CusumDetector::CusumDetector(const dist::Distribution& baseline, Options options)
    : baseline_(baseline.clone()), options_(options) {
  PREEMPT_REQUIRE(options_.allowance >= 0.0, "cusum allowance must be >= 0");
  PREEMPT_REQUIRE(options_.threshold > 0.0, "cusum threshold must be positive");
  const double end = baseline_->support_end();
  if (std::isfinite(end)) {
    // cdf(end) includes any deadline atom; the continuous part just below it
    // anchors where the atom's PIT interval starts.
    atom_base_ = baseline_->cdf(end * (1.0 - 1e-12));
  }
}

CusumDetector::Status CusumDetector::observe(double lifetime_hours) {
  PREEMPT_REQUIRE(std::isfinite(lifetime_hours) && lifetime_hours >= 0.0,
                  "lifetime must be finite and >= 0");
  // Probability integral transform. Observations in the deadline atom all
  // share one cdf value; spread them to the middle of the atom interval so
  // they contribute (atom_base + 1)/2 instead of saturating at 1.
  const double end = baseline_->support_end();
  double u;
  if (std::isfinite(end) && lifetime_hours >= end * (1.0 - 1e-12)) {
    u = 0.5 * (atom_base_ + 1.0);
  } else {
    u = baseline_->cdf(lifetime_hours);
  }
  // Standardize: Uniform(0,1) has mean 1/2 and std 1/sqrt(12).
  const double z = (u - 0.5) * std::sqrt(12.0);

  // Shorter lifetimes => u below 1/2 => negative z feeds the "shorter" side.
  status_.stat_shorter = std::max(0.0, status_.stat_shorter - z - options_.allowance);
  status_.stat_longer = std::max(0.0, status_.stat_longer + z - options_.allowance);
  ++status_.samples;

  if (!status_.alarm) {
    if (status_.stat_shorter > options_.threshold) {
      status_.alarm = true;
      status_.side = AlarmSide::kShorterLifetimes;
    } else if (status_.stat_longer > options_.threshold) {
      status_.alarm = true;
      status_.side = AlarmSide::kLongerLifetimes;
    }
  }
  return status_;
}

void CusumDetector::reset() { status_ = Status{}; }

}  // namespace preempt::core
