// Sequential change-point detection via a two-sided CUSUM on PIT residuals.
//
// Complements core::DriftDetector (windowed Kolmogorov-Smirnov): CUSUM is the
// classical *sequential* test — O(1) state per observation and a tunable
// trade-off between detection delay and false-alarm rate, where the KS
// monitor needs a full window and re-scans it. The paper's Sec. 8 loop
// ("compare observed data with model-predictions and detect change-points")
// maps onto either; a long-running service would typically run both.
//
// Mechanics: under the baseline model, u = F(T) of an observed lifetime is
// Uniform(0,1) (the probability integral transform; the deadline atom is
// spread mid-interval). CUSUM accumulates standardized deviations of u from
// 1/2 in both directions and alarms when either side exceeds the threshold.
#pragma once

#include "dist/distribution.hpp"

namespace preempt::core {

class CusumDetector {
 public:
  struct Options {
    /// Drift allowance k in std-dev units: deviations smaller than this are
    /// absorbed. 0.5 targets a one-sigma shift (the usual default).
    double allowance = 0.5;
    /// Alarm threshold h in std-dev units. Larger h = fewer false alarms,
    /// longer detection delay. The Gaussian textbook range is 4-5; PIT
    /// residuals are bounded but a large deadline atom produces runs of
    /// identical increments, so the default sits higher.
    double threshold = 8.0;
  };

  /// Which direction tripped the alarm.
  enum class AlarmSide {
    kNone,
    kShorterLifetimes,  ///< observed lifetimes stochastically shorter than modeled
    kLongerLifetimes,   ///< ... longer than modeled
  };

  struct Status {
    bool alarm = false;
    AlarmSide side = AlarmSide::kNone;
    double stat_shorter = 0.0;  ///< CUSUM statistic, shorter-lifetime side
    double stat_longer = 0.0;   ///< CUSUM statistic, longer-lifetime side
    std::size_t samples = 0;    ///< observations since the last reset
  };

  /// The detector clones and owns the baseline law.
  explicit CusumDetector(const dist::Distribution& baseline) : CusumDetector(baseline, {}) {}
  CusumDetector(const dist::Distribution& baseline, Options options);

  const Options& options() const noexcept { return options_; }
  const dist::Distribution& baseline() const noexcept { return *baseline_; }

  /// Feed one observed lifetime (hours); returns the updated status.
  /// Once alarmed, the status stays alarmed until reset().
  Status observe(double lifetime_hours);

  Status status() const noexcept { return status_; }

  /// Clear the accumulators (e.g. after refitting the baseline elsewhere).
  void reset();

 private:
  dist::DistributionPtr baseline_;
  Options options_;
  Status status_;
  double atom_base_ = 0.0;  ///< F at the support end (atom handling)
};

}  // namespace preempt::core
