#include "core/drift.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "dist/empirical.hpp"

namespace preempt::core {

DriftDetector::DriftDetector(PreemptionModel baseline, Options options)
    : baseline_(std::move(baseline)), options_(options) {
  PREEMPT_REQUIRE(options_.window >= 10, "drift window must hold at least 10 samples");
  PREEMPT_REQUIRE(options_.min_samples >= 5 && options_.min_samples <= options_.window,
                  "min_samples must be in [5, window]");
  PREEMPT_REQUIRE(options_.ks_critical > 0.0, "KS critical constant must be positive");
  PREEMPT_REQUIRE(options_.horizon_hours > 0.0, "horizon must be positive");
}

DriftDetector::Status DriftDetector::observe(double lifetime_hours) {
  PREEMPT_REQUIRE(std::isfinite(lifetime_hours) && lifetime_hours >= 0.0,
                  "lifetime must be finite and non-negative");
  window_.push_back(lifetime_hours);
  if (window_.size() > options_.window) window_.pop_front();
  return status();
}

DriftDetector::Status DriftDetector::status() const {
  Status s;
  s.samples = window_.size();
  if (window_.size() < options_.min_samples) return s;
  const std::vector<double> samples(window_.begin(), window_.end());
  const dist::EmpiricalDistribution ecdf(samples);
  s.ks = ecdf.ks_distance(baseline_.distribution());
  s.threshold = options_.ks_critical / std::sqrt(static_cast<double>(window_.size()));
  s.drift = s.ks > s.threshold;
  return s;
}

const PreemptionModel& DriftDetector::refit() {
  PREEMPT_REQUIRE(window_.size() >= options_.min_samples,
                  "not enough samples in the window to refit");
  const std::vector<double> samples(window_.begin(), window_.end());
  baseline_ = PreemptionModel::fit(samples, options_.horizon_hours);
  window_.clear();
  return baseline_;
}

}  // namespace preempt::core
