#include "core/registry.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace preempt::core {

namespace {
/// Fit, tolerating numeric failure on degenerate pools (returns nullopt).
std::optional<PreemptionModel> try_fit(const std::vector<double>& lifetimes, double horizon) {
  if (lifetimes.size() < ModelRegistry::kMinSamples) return std::nullopt;
  try {
    return PreemptionModel::fit(lifetimes, horizon);
  } catch (const Error& e) {
    PREEMPT_LOG_WARN << "registry pool fit failed: " << e.what();
    return std::nullopt;
  }
}
}  // namespace

ModelRegistry ModelRegistry::fit_from_dataset(const trace::Dataset& dataset,
                                              double horizon_hours) {
  PREEMPT_REQUIRE(!dataset.empty(), "cannot fit a registry from an empty dataset");
  ModelRegistry registry;

  registry.global_ = try_fit(dataset.lifetimes(), horizon_hours);

  for (const auto& [type, type_ds] : dataset.group_by_type()) {
    if (auto m = try_fit(type_ds.lifetimes(), horizon_hours)) {
      registry.type_.emplace(type, std::move(*m));
    }
    for (const auto& [zone, zone_ds] : type_ds.group_by_zone()) {
      if (auto m = try_fit(zone_ds.lifetimes(), horizon_hours)) {
        registry.type_zone_.emplace(TypeZoneKey{type, zone}, std::move(*m));
      }
      // Full keys: split by period and workload.
      for (trace::DayPeriod period : {trace::DayPeriod::kDay, trace::DayPeriod::kNight}) {
        for (trace::WorkloadKind workload :
             {trace::WorkloadKind::kIdle, trace::WorkloadKind::kBatch}) {
          const trace::Dataset cell = zone_ds.by_period(period).by_workload(workload);
          if (auto m = try_fit(cell.lifetimes(), horizon_hours)) {
            registry.full_.emplace(FullKey{type, zone, period, workload}, std::move(*m));
          }
        }
      }
    }
  }
  return registry;
}

const PreemptionModel* ModelRegistry::exact(const trace::RegimeKey& key) const {
  const auto it = full_.find(FullKey{key.type, key.zone, key.period, key.workload});
  return it == full_.end() ? nullptr : &it->second;
}

const PreemptionModel* ModelRegistry::by_type_zone(trace::VmType type, trace::Zone zone) const {
  const auto it = type_zone_.find(TypeZoneKey{type, zone});
  return it == type_zone_.end() ? nullptr : &it->second;
}

const PreemptionModel* ModelRegistry::by_type(trace::VmType type) const {
  const auto it = type_.find(type);
  return it == type_.end() ? nullptr : &it->second;
}

const PreemptionModel* ModelRegistry::global() const {
  return global_.has_value() ? &*global_ : nullptr;
}

const PreemptionModel& ModelRegistry::lookup(const trace::RegimeKey& key) const {
  if (const PreemptionModel* m = exact(key)) return *m;
  if (const PreemptionModel* m = by_type_zone(key.type, key.zone)) return *m;
  if (const PreemptionModel* m = by_type(key.type)) return *m;
  if (const PreemptionModel* m = global()) return *m;
  throw InvalidArgument("model registry has no model at any pooling level");
}

std::size_t ModelRegistry::model_count() const {
  return full_.size() + type_zone_.size() + type_.size() + (global_ ? 1 : 0);
}

}  // namespace preempt::core
