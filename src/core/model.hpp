// PreemptionModel — the library's primary public type.
//
// Bundles a fitted constrained-preemption (bathtub) distribution with the
// analyses and policies the paper derives from it: expected lifetime (Eq. 3),
// running-time impact (Eqs. 4-8), the VM-reuse scheduler (Sec. 4.2) and the
// DP checkpoint scheduler (Sec. 4.3).
//
// Typical use:
//   auto ds    = trace::generate_campaign({...});             // or load CSV
//   auto model = core::PreemptionModel::fit(ds.lifetimes());
//   model.reuse_decision(vm_age, job_hours).reuse;
//   auto dp    = model.make_checkpoint_dp(job_hours);
#pragma once

#include <optional>
#include <span>

#include "dist/bathtub.hpp"
#include "fit/model_fitters.hpp"
#include "policy/checkpoint.hpp"
#include "policy/scheduling.hpp"

namespace preempt::core {

class PreemptionModel {
 public:
  /// Fit the bathtub model to observed lifetimes (hours) by bounded least
  /// squares on the Hazen ECDF. Throws NumericError / InvalidArgument on
  /// degenerate input (< 5 samples, non-finite values, ...).
  static PreemptionModel fit(std::span<const double> lifetimes, double horizon_hours = 24.0);

  /// Wrap known parameters (e.g. a ground-truth regime or stored fit).
  static PreemptionModel from_params(const dist::BathtubParams& params);

  /// The underlying distribution (raw Eq. 1/2 access included).
  const dist::BathtubDistribution& distribution() const noexcept { return dist_; }
  const dist::BathtubParams& params() const noexcept { return dist_.params(); }

  /// Goodness of fit on the ECDF; empty for from_params models.
  const std::optional<fit::GofStats>& fit_quality() const noexcept { return gof_; }

  // -- reliability analysis ---------------------------------------------------
  /// Eq. 3 expected lifetime (the paper's MTTF substitute).
  double expected_lifetime() const { return dist_.expected_lifetime_eq3(); }
  /// Full mean including the deadline-reclamation atom.
  double mean_lifetime() const { return dist_.mean(); }
  /// Preemption (hazard) rate at VM age t.
  double preemption_rate(double age_hours) const { return dist_.hazard(age_hours); }

  // -- running-time impact (Sec. 4.1) -----------------------------------------
  double expected_wasted_work(double job_hours) const;
  double expected_makespan(double job_hours) const;
  double expected_makespan_from_age(double start_age_hours, double job_hours) const;
  double job_failure_probability(double start_age_hours, double job_hours) const;

  // -- policies ----------------------------------------------------------------
  /// One reuse-or-replace decision (Sec. 4.2 rule).
  policy::ReuseDecision reuse_decision(double vm_age_hours, double job_hours) const;
  /// A scheduler object for continued use.
  std::unique_ptr<policy::SchedulingPolicy> make_scheduler() const;
  /// A DP checkpoint value table for jobs up to `job_hours`.
  policy::CheckpointDp make_checkpoint_dp(double job_hours,
                                          policy::CheckpointConfig config = {}) const;

 private:
  PreemptionModel(dist::BathtubDistribution d, std::optional<fit::GofStats> gof)
      : dist_(std::move(d)), gof_(gof) {}

  dist::BathtubDistribution dist_;
  std::optional<fit::GofStats> gof_;
};

}  // namespace preempt::core
