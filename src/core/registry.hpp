// ModelRegistry — per-regime model management.
//
// The paper's service "parametrizes the bathtub model based on the VM type,
// region, time-of-day, and day-of-week" (Sec. 5). The registry fits one model
// per regime present in a dataset — at several pooling levels — and answers
// lookups with a fallback chain, so sparsely observed regimes borrow strength
// from coarser pools:
//   (type, zone, period, workload) -> (type, zone) -> (type) -> global.
#pragma once

#include <map>
#include <optional>

#include "core/model.hpp"
#include "trace/dataset.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::core {

class ModelRegistry {
 public:
  /// Minimum samples for a pool to get its own fit.
  static constexpr std::size_t kMinSamples = 20;

  /// Fit models at every pooling level with enough data.
  static ModelRegistry fit_from_dataset(const trace::Dataset& dataset,
                                        double horizon_hours = 24.0);

  /// Most specific model available for the key (see fallback chain above).
  /// Throws InvalidArgument if the registry is empty.
  const PreemptionModel& lookup(const trace::RegimeKey& key) const;

  /// Exact-level probes (for introspection / tests).
  const PreemptionModel* exact(const trace::RegimeKey& key) const;
  const PreemptionModel* by_type_zone(trace::VmType type, trace::Zone zone) const;
  const PreemptionModel* by_type(trace::VmType type) const;
  const PreemptionModel* global() const;

  std::size_t model_count() const;

 private:
  struct TypeZoneKey {
    trace::VmType type;
    trace::Zone zone;
    auto operator<=>(const TypeZoneKey&) const = default;
  };
  struct FullKey {
    trace::VmType type;
    trace::Zone zone;
    trace::DayPeriod period;
    trace::WorkloadKind workload;
    auto operator<=>(const FullKey&) const = default;
  };

  std::map<FullKey, PreemptionModel> full_;
  std::map<TypeZoneKey, PreemptionModel> type_zone_;
  std::map<trace::VmType, PreemptionModel> type_;
  std::optional<PreemptionModel> global_;
};

}  // namespace preempt::core
