// High-level analysis harnesses shared by examples and benches.
#pragma once

#include <span>

#include "common/table.hpp"
#include "dist/empirical.hpp"
#include "fit/model_fitters.hpp"

namespace preempt::core {

/// The Fig. 1 experiment: fit all candidate families to one set of lifetimes
/// and score them against the ECDF.
struct DistributionComparison {
  dist::EmpiricalDistribution empirical;
  std::vector<fit::FitResult> fits;  ///< bathtub, exponential, weibull, gompertz-makeham

  /// Fit-quality summary, one row per family.
  Table summary_table() const;
  /// CDF series at `points` abscissae: empirical + every fitted family.
  Table cdf_table(std::size_t points = 25) const;
  /// Density series (Fig. 1 inset): histogram + fitted pdfs.
  Table pdf_table(std::size_t points = 25) const;
  /// The family with the smallest SSE.
  const fit::FitResult& best() const;
};

/// Which comparator families to fit alongside the bathtub model.
enum class ComparisonScope {
  kPaper,     ///< Fig. 1's set: exponential, Weibull, Gompertz-Makeham
  kExtended,  ///< + lognormal, gamma, exponentiated Weibull (ref [42])
};

DistributionComparison compare_distributions(std::span<const double> lifetimes,
                                             double horizon_hours = 24.0,
                                             ComparisonScope scope = ComparisonScope::kPaper);

/// Phase structure report of a bathtub model (Observation 1's three phases).
struct PhaseReport {
  double infant_end_hours = 0.0;
  double deadline_start_hours = 0.0;
  double stable_hazard_per_hour = 0.0;  ///< hazard at the middle of the stable phase
  double infant_hazard_per_hour = 0.0;  ///< hazard just after launch
};
PhaseReport phase_report(const dist::BathtubDistribution& d);

}  // namespace preempt::core
